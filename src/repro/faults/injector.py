"""The fault-injection shim.

:class:`FaultInjector` wraps a :class:`~repro.engine.simulator.Simulator`
and injects the faults of a :class:`~repro.faults.schedule.FaultSchedule`
by intercepting exactly four calls — ``step``, ``collect_metrics``,
``source_target_rates`` and ``rescale`` — and delegating everything else
untouched. The simulator is never forked or subclassed: a control loop
(or experiment harness) that receives an injector instead of a bare
simulator runs unchanged, which is what keeps the fault-free and
fault-injected code paths provably identical.

Injection points:

* ``step`` — fires due one-shot events (instance crashes, arming
  rescale failures) and keeps the metric-dropout suppression set in
  sync with the active events. A crash's outage is charged by the
  *runtime's* :class:`~repro.engine.recovery.RecoveryModel` (via
  :meth:`~repro.engine.simulator.Simulator.fail_instance`) — savepoint
  restore on Flink, peer re-sync on Timely, container restart on
  Heron — never hardcoded here.
* ``collect_metrics`` — depresses source telemetry under source
  dropout, miscounts records under corruption, distorts queue-fill /
  backpressure signals under health corruption, and re-delivers /
  merges windows under metrics lag.
* ``source_target_rates`` — the externally monitored λ_src is sampled
  from the same reporters as the metrics pipeline, so it too drops
  when source reporters go silent. This is the legacy failure mode the
  hardened manager compensates for.
* ``rescale`` — armed :class:`~repro.faults.events.RescaleFailure`
  events reject the request (``abort``) or charge a full
  savepoint-and-restart outage first (``timeout``); either way the old
  configuration keeps running and the request raises
  :class:`~repro.errors.ReconfigurationError`. The *timeout* cost is
  deliberately the savepoint model, not the recovery model: a timed-out
  rescale is a failed reconfiguration, not a crash.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.dataflow.physical import InstanceId
from repro.engine.simulator import Simulator, TickStats
from repro.errors import ReconfigurationError
from repro.faults.events import (
    HealthCorruption,
    InstanceCrash,
    MetricCorruption,
    MetricDropout,
    MetricLag,
    RescaleFailure,
)
from repro.faults.schedule import FaultSchedule
from repro.metrics import InstanceCounters, MetricsWindow, merge_windows
from repro.telemetry.spans import SpanProfiler, active_profiler
from repro.telemetry.tracer import Tracer, active_tracer


class FaultInjector:
    """Transparent fault-injecting proxy around a simulator."""

    def __init__(
        self,
        simulator: Simulator,
        schedule: FaultSchedule,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._sim = simulator
        self._schedule = schedule
        # Injections are emitted as trace events whose kinds reuse the
        # repro.faults.events vocabulary ("fault.<EventClassName>").
        self._tracer = tracer if tracer is not None else active_tracer()
        self._profiler: SpanProfiler = active_profiler()
        self._fired: Set[int] = set()
        # Armed rescale failures: [event, remaining count].
        self._armed: List[List] = []
        # Metrics-lag state: buffered fresh windows and the last window
        # actually delivered before the lag started.
        self._lag_buffer: List[MetricsWindow] = []
        self._last_delivered: Optional[MetricsWindow] = None
        # Human-readable record of every injection, for reports/tests.
        self._log: List[Tuple[float, str]] = []
        # (virtual time, outage seconds) per fired instance crash —
        # the structured view campaign scorers aggregate into
        # per-runtime recovery-time distributions.
        self._crash_outages: List[Tuple[float, float]] = []

    def __getattr__(self, name: str):
        # Everything not intercepted goes straight to the simulator
        # (only consulted when normal attribute lookup fails).
        return getattr(self._sim, name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def simulator(self) -> Simulator:
        return self._sim

    @property
    def schedule(self) -> FaultSchedule:
        return self._schedule

    @property
    def injection_log(self) -> List[Tuple[float, str]]:
        """(virtual time, description) per injected fault action."""
        return list(self._log)

    @property
    def crash_outages(self) -> List[Tuple[float, float]]:
        """(virtual time, recovery outage seconds) per fired crash."""
        return list(self._crash_outages)

    @property
    def armed_rescale_failures(self) -> int:
        """Rescale failures still waiting to reject a request."""
        return sum(remaining for _, remaining in self._armed)

    # ------------------------------------------------------------------
    # Intercepted simulator surface
    # ------------------------------------------------------------------

    def step(self) -> TickStats:
        self._fire_one_shots()
        self._sync_suppression()
        return self._sim.step()

    def collect_metrics(self) -> MetricsWindow:
        self._sync_suppression()
        window = self._sim.collect_metrics()
        window = self._depress_source_telemetry(window)
        window = self._corrupt(window)
        window = self._corrupt_health(window)
        return self._apply_lag(window)

    def source_target_rates(self) -> Dict[str, float]:
        """λ_src as the (possibly degraded) rate monitor reports it."""
        rates = self._sim.source_target_rates()
        for name in rates:
            rates[name] *= self._telemetry_completeness(name)
        return rates

    def rescale(self, updates: Mapping[str, int]) -> float:
        for entry in self._armed:
            event, remaining = entry
            if remaining <= 0:
                continue
            entry[1] -= 1
            if event.mode == "timeout":
                outage = self._sim.runtime.savepoint_model().outage_seconds(
                    self._sim.state_model.total_bytes
                )
                self._sim.force_outage(outage)
                self._note(
                    f"rescale to {dict(updates)} timed out after "
                    f"{outage:.1f}s outage; old configuration restored"
                )
                self._trace(
                    event,
                    action="rejected",
                    mode=event.mode,
                    requested=dict(updates),
                    outage=outage,
                )
                raise ReconfigurationError(
                    f"reconfiguration timed out after {outage:.1f}s; "
                    f"job restored to the previous configuration"
                )
            self._note(
                f"rescale to {dict(updates)} aborted (savepoint refused)"
            )
            self._trace(
                event,
                action="rejected",
                mode=event.mode,
                requested=dict(updates),
            )
            raise ReconfigurationError(
                "reconfiguration aborted: savepoint refused"
            )
        return self._sim.rescale(updates)

    # ------------------------------------------------------------------
    # One-shot events
    # ------------------------------------------------------------------

    def _fire_one_shots(self) -> None:
        now = self._sim.time
        for index, event in enumerate(self._schedule.events):
            if index in self._fired or event.time > now:
                continue
            if isinstance(event, InstanceCrash):
                profiled = self._profiler.enabled
                if profiled:
                    self._profiler.enter("fault.fire")
                try:
                    self._fired.add(index)
                    parallelism = self._sim.plan.parallelism.get(
                        event.operator
                    )
                    if parallelism is None:
                        self._note(
                            f"crash of unknown operator "
                            f"{event.operator!r} skipped"
                        )
                        continue
                    # Clamp: the schedule may predate a scale-down.
                    idx = min(event.index, parallelism - 1)
                    outage = self._sim.fail_instance(event.operator, idx)
                    self._crash_outages.append((now, outage))
                    self._note(
                        f"crashed {event.operator}[{idx}]; recovery "
                        f"outage {outage:.1f}s"
                    )
                    self._trace(
                        event,
                        operator=event.operator,
                        index=idx,
                        outage=outage,
                    )
                finally:
                    if profiled:
                        self._profiler.exit("fault.fire")
            elif isinstance(event, RescaleFailure):
                profiled = self._profiler.enabled
                if profiled:
                    self._profiler.enter("fault.fire")
                try:
                    self._fired.add(index)
                    self._armed.append([event, event.count])
                    self._note(
                        f"armed {event.count} rescale failure(s) "
                        f"(mode={event.mode})"
                    )
                    self._trace(
                        event,
                        action="armed",
                        mode=event.mode,
                        count=event.count,
                    )
                finally:
                    if profiled:
                        self._profiler.exit("fault.fire")

    # ------------------------------------------------------------------
    # Metric dropout
    # ------------------------------------------------------------------

    def _dropped_instances(self, now: float) -> Set[InstanceId]:
        """Instances silenced by the dropouts active at ``now``, against
        the currently deployed parallelism (lowest indices first, so
        the choice is stable across windows and replays)."""
        dropped: Set[InstanceId] = set()
        parallelism = self._sim.plan.parallelism
        for event in self._schedule.active(now, MetricDropout):
            count = parallelism.get(event.operator, 0)
            if count <= 0:
                continue
            silenced = min(count, int(round(event.fraction * count)))
            for idx in range(silenced):
                dropped.add(InstanceId(event.operator, idx))
        return dropped

    def _sync_suppression(self) -> None:
        manager = self._sim.metrics_manager
        dropped = self._dropped_instances(self._sim.time)
        if dropped != manager.suppressed:
            manager.set_suppressed(dropped)
            if self._tracer.enabled:
                self._tracer.emit(
                    "fault.MetricDropout",
                    self._sim.time,
                    suppressed=sorted(
                        f"{iid.operator}[{iid.index}]"
                        for iid in dropped
                    ),
                )

    def _telemetry_completeness(self, operator: str) -> float:
        """Fraction of an operator's reporters still audible to the
        external telemetry at the current time."""
        count = self._sim.plan.parallelism.get(operator, 0)
        if count <= 0:
            return 1.0
        silenced = len(
            {
                iid
                for iid in self._dropped_instances(self._sim.time)
                if iid.operator == operator
            }
        )
        return (count - silenced) / count

    def _depress_source_telemetry(
        self, window: MetricsWindow
    ) -> MetricsWindow:
        """The observed source rates come from the same per-instance
        reporters the metrics pipeline uses, so a half-silenced source
        shows half its true rate — the signal that tricks a
        non-hardened controller into scaling the whole job down."""
        observed = dict(window.source_observed_rates)
        changed = False
        for name in observed:
            fraction = window.completeness_of(name)
            if fraction < 1.0:
                observed[name] *= fraction
                changed = True
        if not changed:
            return window
        return replace(window, source_observed_rates=observed)

    # ------------------------------------------------------------------
    # Metric corruption
    # ------------------------------------------------------------------

    def _corrupt(self, window: MetricsWindow) -> MetricsWindow:
        events = self._schedule.active(self._sim.time, MetricCorruption)
        if not events:
            return window
        instances = dict(window.instances)
        changed = False
        for event in events:
            rng = self._schedule.rng_for(event, salt=window.start)
            for iid in sorted(
                instances, key=lambda i: (i.operator, i.index)
            ):
                if iid.operator != event.operator:
                    continue
                factor = 1.0 + rng.uniform(
                    -event.amplitude, event.amplitude
                )
                counters = instances[iid]
                instances[iid] = InstanceCounters(
                    records_pulled=counters.records_pulled * factor,
                    records_pushed=counters.records_pushed * factor,
                    useful_time=counters.useful_time,
                    waiting_time=counters.waiting_time,
                    observed_time=counters.observed_time,
                )
                changed = True
        if not changed:
            return window
        self._note(
            f"corrupted record counters of "
            f"{sorted({e.operator for e in events})}"
        )
        return replace(window, instances=instances)

    # ------------------------------------------------------------------
    # Health-signal corruption
    # ------------------------------------------------------------------

    def _corrupt_health(self, window: MetricsWindow) -> MetricsWindow:
        """Corrupt the coarse health signals the baselines consume.

        Queue fill and pending records are scaled by independent
        factors from ``[1 - amplitude, 1 + amplitude]``; the
        backpressure flag is then *recomputed* against the runtime's
        high-water mark, so an inflated queue raises phantom
        backpressure and a deflated one hides the real thing. The
        record counters DS2 reads are untouched.
        """
        events = self._schedule.active(self._sim.time, HealthCorruption)
        if not events:
            return window
        health = dict(window.health)
        threshold = self._sim.runtime.backpressure_threshold
        changed = False
        for event in events:
            entry = health.get(event.operator)
            if entry is None:
                continue
            rng = self._schedule.rng_for(event, salt=window.start)
            queue_factor = 1.0 + rng.uniform(
                -event.amplitude, event.amplitude
            )
            pending_factor = 1.0 + rng.uniform(
                -event.amplitude, event.amplitude
            )
            fraction_factor = 1.0 + rng.uniform(
                -event.amplitude, event.amplitude
            )
            queue_fill = max(0.0, entry.queue_fill * queue_factor)
            backpressure = queue_fill >= threshold
            fraction = min(
                1.0, entry.backpressure_fraction * fraction_factor
            )
            if backpressure and fraction <= 0.0:
                # A raised flag with zero duration would be ignored by
                # duration-based resolvers; a corrupted reporter that
                # claims a hot queue claims it was hot for a while.
                fraction = min(1.0, queue_fill)
            health[event.operator] = replace(
                entry,
                queue_fill=queue_fill,
                backpressure=backpressure,
                backpressure_fraction=fraction,
                pending_records=max(
                    0.0, entry.pending_records * pending_factor
                ),
            )
            changed = True
            self._trace(
                event,
                operator=event.operator,
                queue_fill=round(queue_fill, 6),
                backpressure=backpressure,
                was_backpressure=entry.backpressure,
            )
        if not changed:
            return window
        self._note(
            f"corrupted health signals of "
            f"{sorted({e.operator for e in events})}"
        )
        return replace(window, health=health)

    # ------------------------------------------------------------------
    # Metrics lag
    # ------------------------------------------------------------------

    def _apply_lag(self, window: MetricsWindow) -> MetricsWindow:
        if self._schedule.active(self._sim.time, MetricLag):
            self._lag_buffer.append(window)
            if self._last_delivered is not None:
                self._note(
                    "metrics lag: re-delivered window "
                    f"[{self._last_delivered.start:.0f}, "
                    f"{self._last_delivered.end:.0f}]"
                )
                return self._last_delivered
            # Nothing delivered yet to repeat: the first window leaks
            # through (a lagging pipeline still has a newest window).
            self._lag_buffer.pop()
            self._last_delivered = window
            return window
        if self._lag_buffer:
            backlog = self._lag_buffer + [window]
            self._lag_buffer = []
            merged = merge_windows(backlog)
            self._note(
                f"metrics lag ended: delivered {len(backlog)} "
                f"buffered window(s) merged"
            )
            self._last_delivered = merged
            return merged
        self._last_delivered = window
        return window

    # ------------------------------------------------------------------

    def _note(self, message: str) -> None:
        self._log.append((self._sim.time, message))

    def _trace(self, event: object, **data: object) -> None:
        """Emit one injection as a trace event. The kind is derived
        from the fault event's class (``fault.InstanceCrash``, ...)
        so the trace vocabulary *is* the repro.faults.events one."""
        if self._tracer.enabled:
            self._tracer.emit(
                f"fault.{type(event).__name__}", self._sim.time, **data
            )


__all__ = ["FaultInjector"]
