"""Exception hierarchy for the DS2 reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch a single base class. Subclasses are organized by subsystem:
graph construction, physical planning, engine execution, and controller
policy evaluation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """Raised for invalid logical dataflow graphs (cycles, dangling edges,
    missing sources/sinks, duplicate operator names)."""


class PlanError(ReproError):
    """Raised for invalid physical plans (non-positive parallelism,
    parallelism above runtime limits, unknown operators)."""


class EngineError(ReproError):
    """Raised for invalid engine configurations or broken invariants
    detected during simulation (e.g. negative queue length)."""


class PolicyError(ReproError):
    """Raised when a scaling policy cannot produce a decision
    (e.g. malformed metrics, unknown operators in a metrics report)."""


class MetricsError(ReproError):
    """Raised for malformed or inconsistent instrumentation metrics
    (e.g. useful time exceeding the observation window)."""


class ReconfigurationError(ReproError):
    """Raised when a rescaling action cannot be applied to a running job."""


class FaultInjectionError(ReproError):
    """Raised for invalid fault-injection requests (malformed fault
    specs, events targeting unknown operators or instances, schedules
    with negative times or empty durations)."""


class StaleMetricsError(ReproError):
    """Raised when a controller is asked to act on a metrics window that
    is older than its configured freshness bound (e.g. the reporting
    pipeline lagged and re-delivered an already-seen window)."""


class CheckpointError(ReproError):
    """Raised for unusable campaign checkpoints (mid-file corruption,
    schema-version or header mismatches, cells recorded under a
    different campaign configuration, unreadable journal files)."""


class SweepError(ReproError):
    """Raised for invalid parameter-sweep specifications (unknown axes,
    axis values outside their domain, explicit cells naming unknown
    controllers/runtimes/profiles, unreadable spec files)."""


class TelemetryError(ReproError):
    """Raised for invalid telemetry requests (malformed metric names,
    duplicate registrations with conflicting types, negative counter
    increments, unparseable trace files)."""
