"""Decision-audit tests: building, round-trip, rendering, summary."""

from dataclasses import replace

import pytest

from repro.core.controller import ControlLoop, Controller
from repro.core.manager import DS2Controller, ManagerConfig
from repro.core.policy import DS2Policy
from repro.dataflow.physical import PhysicalPlan
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.errors import TelemetryError
from repro.telemetry import (
    DecisionAudit,
    OperatorAudit,
    Tracer,
    audit_from_dict,
    audit_to_dict,
    finalize_audit,
    render_audit_summary,
    render_decision_audit,
    summarize_audits,
    tracing,
)


class Scripted(Controller):
    name = "scripted"

    def __init__(self, script):
        self.script = list(script)

    def on_metrics(self, observation):
        return self.script.pop(0) if self.script else None

    def notify_rescaled(self, time, outage_seconds, new_parallelism):
        pass


def _simulator(chain_graph, parallelism=1):
    plan = PhysicalPlan(chain_graph, {"worker": parallelism})
    return Simulator(
        plan,
        FlinkRuntime(),
        EngineConfig(tick=0.1, track_record_latency=False),
    )


def _sample_audit(**overrides):
    base = DecisionAudit(
        time=10.0,
        controller="ds2",
        window_start=5.0,
        window_end=10.0,
        window_age=0.0,
        outage_fraction=0.0,
        truncated=False,
        in_outage=False,
        degraded=False,
        rate_compensation=1.0,
        completeness={"worker": 1.0},
        source_target_rates={"src": 1000.0},
        source_observed_rates={"src": 990.0},
        current_parallelism={"worker": 1},
        operators=(
            OperatorAudit(
                operator="worker",
                current_parallelism=1,
                target_rate=1000.0,
                true_processing_rate=950.0,
                true_output_rate=950.0,
                selectivity=1.0,
                ideal_output_rate=1000.0,
                optimal_parallelism_raw=1.05,
                optimal_parallelism=2,
            ),
        ),
        proposal={"worker": 2},
    )
    if overrides:
        return finalize_audit(base, **overrides) \
            if "outcome" in overrides else base
    return base


class TestControlLoopAudits:
    def test_one_audit_per_invocation(self, chain_graph):
        loop = ControlLoop(
            _simulator(chain_graph),
            Scripted([{"worker": 2}]),
            policy_interval=5.0,
        )
        result = loop.run(20.0)
        assert len(result.audits) == 4
        outcomes = [audit.outcome for audit in result.audits]
        assert outcomes[0] == "rescaled"
        # The Flink rescale outage (25s) covers the remaining
        # intervals, so the loop skips them.
        assert set(outcomes[1:]) == {"skipped"}
        assert {a.skip_reason for a in result.audits[1:]} == {"outage"}
        rescaled = result.audits[0]
        assert rescaled.proposal == {"worker": 2}
        # applied records the full post-rescale deployment
        assert rescaled.applied == {"src": 1, "worker": 2, "snk": 1}
        assert rescaled.outage_seconds > 0.0
        assert rescaled.controller == "scripted"

    def test_audit_false_disables_recording(self, chain_graph):
        loop = ControlLoop(
            _simulator(chain_graph),
            Scripted([{"worker": 2}]),
            policy_interval=5.0,
            audit=False,
        )
        result = loop.run(20.0)
        assert result.audits == []

    def test_ds2_controller_fills_operator_rows(self, chain_graph):
        ctrl = DS2Controller(
            DS2Policy(chain_graph),
            config=ManagerConfig(warmup_intervals=0),
        )
        loop = ControlLoop(
            _simulator(chain_graph), ctrl, policy_interval=5.0
        )
        result = loop.run(10.0)
        with_rows = [a for a in result.audits if a.operators]
        assert with_rows, "DS2 audits should carry Eq. 7/8 rows"
        row = with_rows[0].operators[0]
        assert row.operator in {"src", "worker", "snk"}
        assert row.current_parallelism >= 1

    def test_trace_carries_the_audit(self, chain_graph):
        tracer = Tracer(capacity=None)
        with tracing(tracer):
            loop = ControlLoop(
                _simulator(chain_graph),
                Scripted([{"worker": 2}]),
                policy_interval=5.0,
            )
            loop.run(10.0)
        invokes = tracer.events("controller.invoke")
        audits = tracer.events("controller.audit")
        assert len(invokes) == 2
        assert len(audits) == 2
        payload = audits[0].data["audit"]
        rebuilt = audit_from_dict(payload)
        assert rebuilt.outcome == "rescaled"
        assert rebuilt.applied == {"src": 1, "worker": 2, "snk": 1}


class TestRoundTrip:
    def test_to_dict_from_dict_is_lossless(self):
        audit = _sample_audit(
            outcome="rescaled",
            applied={"worker": 2},
            outage_seconds=12.5,
            attempt=1,
        )
        assert audit_from_dict(audit_to_dict(audit)) == audit

    def test_loop_audits_round_trip(self, chain_graph):
        loop = ControlLoop(
            _simulator(chain_graph),
            Scripted([{"worker": 2}]),
            policy_interval=5.0,
        )
        result = loop.run(15.0)
        for audit in result.audits:
            assert audit_from_dict(audit_to_dict(audit)) == audit

    def test_malformed_payload_raises(self):
        with pytest.raises(TelemetryError, match="malformed"):
            audit_from_dict({"time": 1.0})
        bad_rows = audit_to_dict(_sample_audit())
        bad_rows["operators"] = [{"nope": 1}]
        with pytest.raises(TelemetryError, match="malformed"):
            audit_from_dict(bad_rows)
        not_a_list = audit_to_dict(_sample_audit())
        not_a_list["operators"] = "oops"
        with pytest.raises(TelemetryError, match="malformed"):
            audit_from_dict(not_a_list)


class TestRendering:
    def test_render_names_operators_and_outcome(self):
        audit = _sample_audit(
            outcome="rescaled",
            applied={"worker": 2},
            outage_seconds=12.5,
        )
        text = render_decision_audit(audit)
        assert "outcome=rescaled" in text
        assert "worker" in text
        assert "applied: worker=2 after 12.5s outage" in text
        assert "operator" in text and "optimal" in text

    def test_render_skipped_shows_reason(self):
        audit = finalize_audit(
            DecisionAudit(
                time=5.0,
                controller="ds2",
                window_start=0.0,
                window_end=5.0,
                window_age=0.0,
                outage_fraction=0.0,
                truncated=True,
                in_outage=False,
                degraded=False,
                rate_compensation=1.0,
                completeness={},
                source_target_rates={},
                source_observed_rates={},
                current_parallelism={"worker": 1},
                skip_reason="truncated-window",
            ),
            outcome="skipped",
        )
        text = render_decision_audit(audit)
        assert "outcome=skipped (truncated-window)" in text

    def test_render_failed_rescale(self):
        audit = _sample_audit(
            outcome="rescale-failed",
            attempt=2,
            failure_reason="runtime rejected",
        )
        text = render_decision_audit(audit)
        assert "rescale attempt 2 failed: runtime rejected" in text

    def test_unknown_operator_rendered_as_question_mark(self):
        payload = audit_to_dict(_sample_audit())
        payload["operators"][0]["unknown"] = True
        text = render_decision_audit(audit_from_dict(payload))
        assert "worker" in text
        assert "?" in text


class TestSummary:
    def test_summarize_counts_outcomes(self):
        audits = [
            _sample_audit(outcome="rescaled", applied={"worker": 2}),
            _sample_audit(outcome="rescale-failed", attempt=1),
            _sample_audit(),
        ]
        skipped = finalize_audit(
            replace(_sample_audit(), skip_reason="frozen"),
            outcome="skipped",
        )
        audits.append(skipped)
        summary = summarize_audits(audits)
        assert summary.invocations == 4
        assert summary.rescales == 1
        assert summary.failed_rescales == 1
        assert summary.holds == 1
        assert dict(summary.skips) == {"frozen": 1}
        assert summary.proposals == 4

    def test_render_summary(self):
        summary = summarize_audits(
            [_sample_audit(outcome="rescaled", applied={"worker": 2})]
        )
        text = render_audit_summary(summary)
        assert "1 invocations" in text
        assert "1 rescales" in text
