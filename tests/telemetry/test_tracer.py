"""Unit tests for the ring-buffer flight recorder."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    active_tracer,
    read_trace,
    tracing,
)


class TestEmit:
    def test_seq_is_gap_free_and_zero_based(self):
        tracer = Tracer()
        tracer.emit("a.b", 1.0, x=1)
        tracer.emit("a.c", 2.0)
        assert [e.seq for e in tracer.events()] == [0, 1]
        assert len(tracer) == 2

    def test_payload_kept_verbatim(self):
        tracer = Tracer()
        tracer.emit("k", 0.5, op="worker", n=3)
        event = tracer.events()[0]
        assert event.kind == "k"
        assert event.time == 0.5
        assert event.data == {"op": "worker", "n": 3}

    def test_empty_kind_rejected(self):
        with pytest.raises(TelemetryError):
            Tracer().emit("", 0.0)

    def test_filter_by_kind(self):
        tracer = Tracer()
        tracer.emit("a", 0.0)
        tracer.emit("b", 1.0)
        tracer.emit("a", 2.0)
        assert [e.time for e in tracer.events("a")] == [0.0, 2.0]


class TestRingBuffer:
    def test_eviction_counts_and_preserves_seq(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.emit("k", float(i))
        assert len(tracer) == 2
        assert tracer.dropped == 3
        # seq survives eviction: a nonzero first seq shows the trace
        # lost its head.
        assert [e.seq for e in tracer.events()] == [3, 4]

    def test_unbounded_capacity(self):
        tracer = Tracer(capacity=None)
        for i in range(100):
            tracer.emit("k", float(i))
        assert len(tracer) == 100
        assert tracer.dropped == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(TelemetryError):
            Tracer(capacity=0)

    def test_clear_resets_everything(self):
        tracer = Tracer(capacity=1)
        tracer.emit("k", 0.0)
        tracer.emit("k", 1.0)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        tracer.emit("k", 2.0)
        assert tracer.events()[0].seq == 0


class TestJsonl:
    def test_lines_are_sorted_and_compact(self):
        tracer = Tracer()
        tracer.emit("engine.tick", 4.0, queued=1.5, outage=False)
        line = tracer.to_jsonl().splitlines()[0]
        assert line == (
            '{"data":{"outage":false,"queued":1.5},'
            '"kind":"engine.tick","seq":0,"t":4.0}'
        )

    def test_serialization_is_deterministic(self):
        def build():
            tracer = Tracer()
            tracer.emit("a", 0.25, z=1, a=2)
            tracer.emit("b", 0.5, nested={"y": [1, 2]})
            return tracer.to_jsonl()

        assert build() == build()

    def test_write_jsonl_roundtrips_through_read_trace(self, tmp_path):
        tracer = Tracer()
        tracer.emit("a", 0.0, x=1)
        tracer.emit("b", 1.0)
        path = tmp_path / "t.jsonl"
        assert tracer.write_jsonl(path) == 2
        records = read_trace(path)
        assert [r["kind"] for r in records] == ["a", "b"]
        assert records[0]["data"] == {"x": 1}

    def test_every_line_parses_as_json(self):
        tracer = Tracer()
        tracer.emit("k", 1.0, values=[1.0, 2.0], name="x")
        for line in tracer.to_jsonl().splitlines():
            assert sorted(json.loads(line)) == [
                "data", "kind", "seq", "t",
            ]


class TestNullTracer:
    def test_disabled_and_records_nothing(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.emit("k", 0.0, x=1)
        assert len(tracer) == 0

    def test_shared_instance_is_disabled(self):
        assert NULL_TRACER.enabled is False


class TestAmbient:
    def test_default_is_null(self):
        assert active_tracer() is NULL_TRACER

    def test_tracing_nests_and_restores(self):
        outer, inner = Tracer(), Tracer()
        with tracing(outer):
            assert active_tracer() is outer
            with tracing(inner):
                assert active_tracer() is inner
            assert active_tracer() is outer
        assert active_tracer() is NULL_TRACER

    def test_restored_after_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracing(tracer):
                raise RuntimeError("boom")
        assert active_tracer() is NULL_TRACER
