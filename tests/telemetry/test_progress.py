"""Tests for campaign heartbeats, progress renderers, and stall
detection.

Renderers are driven through StringIO streams with an injectable
clock, so ETA and stall behavior are deterministic. Executor-level
emission is covered against the real SerialExecutor/ParallelExecutor
(heartbeats must flow on the existing result channel without touching
stdout), and the journaled-heartbeat round trip against a real
checkpoint file.
"""

import io

import pytest

from repro.faults.campaigns import (
    PROFILES,
    CampaignGenerator,
    CampaignTargets,
    ParallelExecutor,
    SerialExecutor,
)
from repro.faults.checkpoint import (
    CheckpointJournal,
    JournalHeader,
    load_journal,
)
from repro.telemetry.progress import (
    NULL_PROGRESS,
    CellEvent,
    PlainProgressRenderer,
    ProgressListener,
    TTYProgressRenderer,
    interrupted_cells,
    make_progress_renderer,
)
from repro.workloads.wordcount import heron_wordcount_graph


def _event(kind="done", index=0, completed=1, total=6, **kw):
    return CellEvent(
        kind=kind,
        index=index,
        key=(1, 0, "ds2"),
        completed=completed,
        total=total,
        **kw,
    )


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class _TTYStream(io.StringIO):
    def isatty(self):
        return True


class TestCellEvent:
    def test_label(self):
        assert _event().label == "seed=1 0/ds2"

    def test_payload_round_trip_fields(self):
        payload = _event(
            kind="done", worker=42, duration=1.23456789
        ).to_payload()
        assert payload["event"] == "done"
        assert payload["key"] == [1, 0, "ds2"]
        assert payload["worker"] == 42
        assert payload["duration"] == pytest.approx(1.234568)

    def test_payload_omits_absent_optionals(self):
        payload = _event(kind="start").to_payload()
        assert "worker" not in payload
        assert "duration" not in payload


class TestInterruptedCells:
    def test_start_without_done_is_interrupted(self):
        beats = [
            _event("start", index=0).to_payload(),
            _event("done", index=0).to_payload(),
            _event("start", index=1).to_payload(),
        ]
        assert interrupted_cells(beats) == ["seed=1 0/ds2"]

    def test_completed_and_resumed_cells_are_not(self):
        beats = [
            _event("start", index=0).to_payload(),
            _event("resume", index=0).to_payload(),
            _event("start", index=1).to_payload(),
            _event("retry", index=1).to_payload(),
        ]
        assert interrupted_cells(beats) == []

    def test_sorted_by_index_and_tolerates_junk(self):
        beats = [
            {"event": "start"},  # no index: ignored
            _event("start", index=2).to_payload(),
            _event("start", index=1).to_payload(),
            {"event": "start", "index": 3, "key": "bad"},
        ]
        assert interrupted_cells(beats) == [
            "seed=1 0/ds2",
            "seed=1 0/ds2",
            "cell #3",
        ]

    def test_empty(self):
        assert interrupted_cells([]) == []


class TestPlainRenderer:
    def test_line_per_event(self):
        stream = io.StringIO()
        renderer = PlainProgressRenderer(stream, clock=_FakeClock())
        renderer.on_event(
            _event("done", completed=3, worker=7, duration=1.5)
        )
        renderer.close()
        line = stream.getvalue()
        assert "[3/6] done seed=1 0/ds2" in line
        assert "(1.5s)" in line
        assert "[worker 7]" in line

    def test_stall_warning_once(self):
        clock = _FakeClock()
        stream = io.StringIO()
        renderer = PlainProgressRenderer(
            stream, cell_timeout=10.0, clock=clock
        )
        renderer.on_event(_event("start", completed=0))
        clock.now += 6.0  # past 10.0 * STALL_TIMEOUT_FRACTION
        renderer.tick()
        renderer.tick()
        assert stream.getvalue().count("no heartbeat") == 1

    def test_heartbeat_resets_stall(self):
        clock = _FakeClock()
        stream = io.StringIO()
        renderer = PlainProgressRenderer(
            stream, stall_after=5.0, clock=clock
        )
        renderer.on_event(_event("start", index=0, completed=0))
        clock.now += 6.0
        renderer.tick()
        renderer.on_event(_event("done", index=0, completed=1))
        renderer.on_event(_event("start", index=1, completed=1))
        clock.now += 6.0
        renderer.tick()
        assert stream.getvalue().count("no heartbeat") == 2


class TestTTYRenderer:
    def test_refreshes_one_line(self):
        stream = _TTYStream()
        renderer = TTYProgressRenderer(stream, clock=_FakeClock())
        renderer.on_event(_event("start", completed=0))
        renderer.on_event(_event("done", completed=1, duration=2.0))
        text = stream.getvalue()
        assert "\r" in text
        assert "cells 1/6" in text
        assert "\n" not in text
        renderer.close()
        assert stream.getvalue().endswith("\n")

    def test_eta_appears_after_first_duration(self):
        stream = _TTYStream()
        renderer = TTYProgressRenderer(stream, clock=_FakeClock())
        renderer.on_event(_event("done", completed=1, duration=2.0))
        assert "eta" in stream.getvalue()

    def test_stall_promoted_to_durable_line(self):
        clock = _FakeClock()
        stream = _TTYStream()
        renderer = TTYProgressRenderer(
            stream, stall_after=5.0, clock=clock
        )
        renderer.on_event(_event("start", completed=0))
        clock.now += 6.0
        renderer.tick()
        renderer.tick()
        text = stream.getvalue()
        assert text.count("no heartbeat") == 1
        assert "seed=1 0/ds2" in text


class TestMakeRenderer:
    def test_tty_stream_gets_refreshing_renderer(self):
        assert isinstance(
            make_progress_renderer(_TTYStream()), TTYProgressRenderer
        )

    def test_plain_stream_gets_line_renderer(self):
        assert isinstance(
            make_progress_renderer(io.StringIO()),
            PlainProgressRenderer,
        )

    def test_null_listener_is_disabled(self):
        assert NULL_PROGRESS.enabled is False
        NULL_PROGRESS.on_event(_event())  # no-op, no error


class _Recorder(ProgressListener):
    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)


def _smoke_generator():
    return CampaignGenerator(
        PROFILES["smoke"],
        CampaignTargets.from_graph(heron_wordcount_graph()),
        seed=1,
    )


def _run_smoke(executor, campaigns=1):
    from repro.experiments.chaos import resolve_workload

    runner = resolve_workload("wordcount").runner(2.0)
    return runner.run(_smoke_generator(), campaigns, executor=executor)


class TestExecutorHeartbeats:
    def test_serial_emits_start_done_pairs(self):
        recorder = _Recorder()
        cards = _run_smoke(SerialExecutor(progress=recorder))
        kinds = [event.kind for event in recorder.events]
        assert kinds == ["start", "done"] * len(cards)
        done = [e for e in recorder.events if e.kind == "done"]
        assert done[-1].completed == len(cards)
        assert done[-1].total == len(cards)
        assert all(e.duration is not None for e in done)

    def test_parallel_emits_heartbeats_for_every_cell(self):
        recorder = _Recorder()
        cards = _run_smoke(
            ParallelExecutor(
                jobs=2, timeout=180.0, progress=recorder
            )
        )
        starts = [e for e in recorder.events if e.kind == "start"]
        done = [e for e in recorder.events if e.kind == "done"]
        assert len(starts) == len(cards)
        assert len(done) == len(cards)
        assert all(e.worker is not None for e in done)

    def test_progress_does_not_change_scorecards(self):
        silent = _run_smoke(SerialExecutor())
        noisy = _run_smoke(SerialExecutor(progress=_Recorder()))
        assert repr(silent) == repr(noisy)


def _header(controllers=("ds2", "ds2-legacy", "dhalion")):
    return JournalHeader(
        profile="smoke",
        workload="wordcount",
        seed=1,
        campaigns=1,
        controllers=controllers,
    )


class TestJournaledHeartbeats:
    def test_heartbeats_round_trip_through_journal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal.open(
            path, _header(controllers=("ds2",))
        )
        journal.record_heartbeat(
            _event("start", completed=0).to_payload()
        )
        journal.record_heartbeat(_event("done").to_payload())
        journal.close()
        loaded = load_journal(path)
        assert [b["event"] for b in loaded.heartbeats] == [
            "start", "done",
        ]
        assert interrupted_cells(loaded.heartbeats) == []

    def test_serial_executor_journals_heartbeats(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal.open(path, _header())
        recorder = _Recorder()
        cards = _run_smoke(
            SerialExecutor(checkpoint=journal, progress=recorder)
        )
        journal.close()
        loaded = load_journal(path)
        kinds = [b["event"] for b in loaded.heartbeats]
        assert kinds == ["start", "done"] * len(cards)

    def test_no_heartbeats_without_progress(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal.open(path, _header())
        _run_smoke(SerialExecutor(checkpoint=journal))
        journal.close()
        assert load_journal(path).heartbeats == []
