"""Trace schema validation, summarization, and the golden trace.

The golden-file test regenerates a small controlled run with tracing
active and byte-compares the JSONL export against the committed
``golden_trace.jsonl``. It fails whenever the trace schema, the event
vocabulary, or the simulator's determinism drifts; regenerate with::

    PYTHONPATH=src python -m tests.telemetry.test_trace_io
"""

from pathlib import Path

import pytest

from repro.core.controller import ControlLoop, Controller
from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    map_operator,
    sink,
    source,
)
from repro.dataflow.physical import PhysicalPlan
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.errors import TelemetryError
from repro.telemetry import (
    EPOCH_KIND,
    Tracer,
    read_trace,
    render_trace_summary,
    summarize_trace,
    tracing,
    validate_trace_record,
)

GOLDEN = Path(__file__).parent / "golden_trace.jsonl"


def _record(seq=0, t=0.0, kind="k", data=None):
    return {"seq": seq, "t": t, "kind": kind, "data": data or {}}


class TestValidateRecord:
    def test_accepts_a_valid_record(self):
        record = _record(data={"x": 1})
        assert validate_trace_record(record, 1) is record

    def test_rejects_non_object(self):
        with pytest.raises(TelemetryError, match="line 3"):
            validate_trace_record([1, 2], 3)

    def test_rejects_wrong_keys(self):
        with pytest.raises(TelemetryError, match="keys"):
            validate_trace_record({"seq": 0, "t": 0.0, "kind": "k"}, 1)
        extra = dict(_record(), extra=1)
        with pytest.raises(TelemetryError, match="keys"):
            validate_trace_record(extra, 1)

    def test_rejects_bad_seq(self):
        for seq in (-1, 1.5, "0", True):
            with pytest.raises(TelemetryError, match="seq"):
                validate_trace_record(_record(seq=seq), 1)

    def test_rejects_seq_gap(self):
        with pytest.raises(TelemetryError, match="gap-free"):
            validate_trace_record(_record(seq=5), 1, previous_seq=3)

    def test_rejects_empty_kind(self):
        with pytest.raises(TelemetryError, match="kind"):
            validate_trace_record(_record(kind=""), 1)

    def test_rejects_bad_time(self):
        for t in ("1.0", None, True):
            with pytest.raises(TelemetryError, match="t must"):
                validate_trace_record(_record(t=t), 1)

    def test_rejects_time_regression(self):
        with pytest.raises(TelemetryError, match="precedes"):
            validate_trace_record(
                _record(t=1.0), 1, previous_time=5.0
            )

    def test_epoch_kind_may_reset_the_clock(self):
        record = _record(t=0.0, kind=EPOCH_KIND)
        assert (
            validate_trace_record(record, 1, previous_time=1200.0)
            is record
        )

    def test_rejects_non_object_data(self):
        with pytest.raises(TelemetryError, match="data"):
            validate_trace_record(_record(data=3), 1)  # type: ignore


class TestReadTrace:
    def test_missing_file(self, tmp_path):
        with pytest.raises(TelemetryError, match="cannot read"):
            read_trace(tmp_path / "nope.jsonl")

    def test_invalid_json_names_the_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"data":{},"kind":"k","seq":0,"t":0.0}\nnot json\n'
        )
        with pytest.raises(TelemetryError, match="line 2"):
            read_trace(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"data":{},"kind":"k","seq":0,"t":0.0}\n\n'
            '{"data":{},"kind":"k","seq":1,"t":1.0}\n'
        )
        assert len(read_trace(path)) == 2


class TestSummarize:
    def test_empty_trace(self):
        summary = summarize_trace([])
        assert summary.events == 0
        assert summary.span == 0.0

    def test_counts_by_category(self):
        records = [
            _record(0, 0.0, "engine.start"),
            _record(1, 5.0, "controller.invoke"),
            _record(2, 5.0, "engine.rescale"),
            _record(3, 6.0, "fault.InstanceCrash"),
            _record(4, 7.0, "fault.MetricDropout"),
        ]
        summary = summarize_trace(records)
        assert summary.decisions == 1
        assert summary.rescales == 1
        assert summary.faults == 2
        assert dict(summary.kinds)["fault.InstanceCrash"] == 1
        assert summary.span == 7.0

    def test_render_notes_ring_eviction(self):
        summary = summarize_trace([_record(seq=10, t=3.0)])
        assert summary.dropped == 10
        text = render_trace_summary(summary)
        assert "seq 10" in text
        assert "dropped the first 10 event(s)" in text
        assert "truncated" in text

    def test_complete_trace_reports_no_drops(self):
        summary = summarize_trace([_record(seq=0, t=3.0)])
        assert summary.dropped == 0
        assert "truncated" not in render_trace_summary(summary)


def _scripted_golden_run() -> Tracer:
    """A fixed seeded run whose trace is committed as the golden file."""

    class Scripted(Controller):
        name = "scripted"

        def __init__(self):
            self.script = [{"worker": 2}]

        def on_metrics(self, observation):
            return self.script.pop(0) if self.script else None

        def notify_rescaled(
            self, time, outage_seconds, new_parallelism
        ):
            pass

    graph = LogicalGraph(
        operators=[
            source("src", rate=RateSchedule.constant(1000.0)),
            map_operator(
                "worker", costs=CostModel(processing_cost=1e-3)
            ),
            sink("snk"),
        ],
        edges=[Edge("src", "worker"), Edge("worker", "snk")],
    )
    plan = PhysicalPlan(graph, {"worker": 1})
    tracer = Tracer(capacity=None)
    with tracing(tracer):
        sim = Simulator(
            plan,
            FlinkRuntime(),
            EngineConfig(tick=0.5, track_record_latency=False),
        )
        loop = ControlLoop(sim, Scripted(), policy_interval=5.0)
        loop.run(15.0)
    return tracer


class TestGoldenTrace:
    def test_golden_trace_is_reproducible(self):
        assert GOLDEN.exists(), (
            "golden_trace.jsonl missing — regenerate with "
            "`python -m tests.telemetry.test_trace_io`"
        )
        regenerated = _scripted_golden_run().to_jsonl()
        assert regenerated == GOLDEN.read_text(encoding="utf-8"), (
            "traced run no longer matches the committed golden trace; "
            "if the schema change is intentional, regenerate it"
        )

    def test_golden_trace_validates(self):
        records = read_trace(GOLDEN)
        assert records, "golden trace is empty"
        assert records[0]["kind"] == EPOCH_KIND
        kinds = {record["kind"] for record in records}
        assert "controller.invoke" in kinds
        assert "controller.audit" in kinds
        assert "engine.rescale" in kinds
        assert "metrics.collect" in kinds

    def test_golden_trace_summary_renders(self):
        summary = summarize_trace(read_trace(GOLDEN))
        text = render_trace_summary(summary)
        assert "decisions: 3" in text
        assert "rescales: 1" in text


if __name__ == "__main__":  # regenerate the golden file
    GOLDEN.write_text(
        _scripted_golden_run().to_jsonl(), encoding="utf-8"
    )
    print(f"wrote {GOLDEN}")
