"""Unit + determinism tests for the hierarchical span profiler.

The determinism contract (ISSUE 9): span *structure* — names, counts,
nesting — is a pure function of the seeded virtual-time run. Identical
seeds produce identical trees under the object and vector engine
backends, and under the serial and process-pool campaign executors.
Wall-clock seconds live only in the timed channel and are never part
of the compared structure.
"""

import threading

import pytest

from repro.engine.npcompat import HAVE_NUMPY
from repro.engine.vectorized import ENGINE_ENV
from repro.errors import TelemetryError
from repro.faults.campaigns import (
    PROFILES,
    CampaignGenerator,
    CampaignTargets,
    ParallelExecutor,
    SerialExecutor,
)
from repro.telemetry.spans import (
    NULL_PROFILER,
    SPAN_SCHEMA_VERSION,
    NullSpanProfiler,
    SpanNode,
    SpanProfiler,
    active_profiler,
    profiling,
)
from repro.workloads.wordcount import heron_wordcount_graph


class TestSpanProfiler:
    def test_enter_exit_counts_and_nesting(self):
        profiler = SpanProfiler()
        with profiler.span("engine.tick"):
            with profiler.span("engine.allocate"):
                pass
            with profiler.span("engine.allocate"):
                pass
        with profiler.span("engine.tick"):
            pass
        tree = profiler.tree()
        tick = tree.children["engine.tick"]
        assert tick.count == 2
        assert tick.children["engine.allocate"].count == 2
        assert "engine.allocate" not in tree.children

    def test_exit_accumulates_seconds(self):
        profiler = SpanProfiler()
        with profiler.span("work"):
            pass
        node = profiler.tree().children["work"]
        assert node.seconds >= 0.0

    def test_mismatched_exit_raises(self):
        profiler = SpanProfiler()
        profiler.enter("a")
        with pytest.raises(TelemetryError, match="does not match"):
            profiler.exit("b")

    def test_exit_without_open_span_raises(self):
        profiler = SpanProfiler()
        with pytest.raises(TelemetryError, match="no span open"):
            profiler.exit("a")

    def test_to_dict_sorts_children_and_stamps_schema(self):
        profiler = SpanProfiler()
        for name in ("zeta", "alpha", "mid"):
            with profiler.span(name):
                pass
        payload = profiler.to_dict()
        assert payload["schema"] == SPAN_SCHEMA_VERSION
        assert [c["name"] for c in payload["children"]] == [
            "alpha", "mid", "zeta",
        ]
        assert all("seconds" in c for c in payload["children"])

    def test_structure_excludes_wall_times(self):
        profiler = SpanProfiler()
        with profiler.span("engine.tick"):
            pass
        structure = profiler.structure()
        assert "seconds" not in structure
        assert "seconds" not in structure["children"][0]

    def test_merge_payload_adds_counts(self):
        worker = SpanProfiler()
        with worker.span("engine.tick"):
            with worker.span("engine.allocate"):
                pass
        parent = SpanProfiler()
        with parent.span("engine.tick"):
            pass
        parent.merge(worker.to_dict())
        parent.merge(None)  # tolerated no-op
        tick = parent.tree().children["engine.tick"]
        assert tick.count == 2
        assert tick.children["engine.allocate"].count == 1

    def test_merge_rejects_malformed_payload(self):
        parent = SpanProfiler()
        with pytest.raises(TelemetryError, match="count"):
            parent.merge({"name": "root", "count": "many"})
        with pytest.raises(TelemetryError, match="without a name"):
            parent.merge({
                "name": "root", "count": 1,
                "children": [{"count": 1}],
            })

    def test_threads_record_into_separate_subtrees(self):
        profiler = SpanProfiler()

        def record():
            for _ in range(50):
                with profiler.span("worker.step"):
                    pass

        threads = [
            threading.Thread(target=record) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert profiler.tree().children["worker.step"].count == 200

    def test_clear_drops_recorded_spans(self):
        profiler = SpanProfiler()
        with profiler.span("a"):
            pass
        profiler.clear()
        assert profiler.tree().children == {}

    def test_render_lists_counts(self):
        profiler = SpanProfiler()
        with profiler.span("engine.tick"):
            with profiler.span("engine.allocate"):
                pass
        text = profiler.render(include_times=False)
        assert "engine.tick" in text
        assert "  engine.allocate" in text
        assert "ms" not in text
        assert "ms" in profiler.render(include_times=True)

    def test_span_node_merge_node(self):
        left, right = SpanNode("root"), SpanNode("root")
        left.child("a").count = 1
        right.child("a").count = 2
        right.child("b").count = 3
        left.merge_node(right)
        assert left.children["a"].count == 3
        assert left.children["b"].count == 3


class TestAmbientProfiler:
    def test_default_is_null(self):
        assert active_profiler() is NULL_PROFILER
        assert NULL_PROFILER.enabled is False

    def test_profiling_makes_profiler_ambient(self):
        profiler = SpanProfiler()
        with profiling(profiler) as active:
            assert active is profiler
            assert active_profiler() is profiler
        assert active_profiler() is NULL_PROFILER

    def test_null_profiler_is_inert(self):
        null = NullSpanProfiler()
        null.enter("a")
        null.exit("b")  # no mismatch error: recording is off
        null.merge({"name": "root", "count": 1})
        assert null.tree().children == {}


def _smoke_structure(jobs=None, backend=None, monkeypatch=None):
    """Span structure of the 2-campaign smoke chaos batch."""
    from repro.experiments.chaos import resolve_workload

    if monkeypatch is not None:
        if backend is None:
            monkeypatch.delenv(ENGINE_ENV, raising=False)
        else:
            monkeypatch.setenv(ENGINE_ENV, backend)
    runner = resolve_workload("wordcount").runner(2.0)
    generator = CampaignGenerator(
        PROFILES["smoke"],
        CampaignTargets.from_graph(heron_wordcount_graph()),
        seed=1,
    )
    executor = (
        SerialExecutor()
        if jobs is None
        else ParallelExecutor(jobs=jobs, timeout=180.0)
    )
    profiler = SpanProfiler()
    with profiling(profiler):
        runner.run(generator, 2, executor=executor)
    return profiler.structure()


class TestSpanDeterminism:
    def test_identical_seeds_identical_structure(self, monkeypatch):
        first = _smoke_structure(monkeypatch=monkeypatch)
        second = _smoke_structure(monkeypatch=monkeypatch)
        assert first == second
        names = {c["name"] for c in first["children"]}
        assert "engine.tick" in names
        assert "controller.decide" in names

    def test_serial_matches_jobs_2(self, monkeypatch):
        serial = _smoke_structure(monkeypatch=monkeypatch)
        parallel = _smoke_structure(jobs=2, monkeypatch=monkeypatch)
        assert serial == parallel

    @pytest.mark.skipif(
        not HAVE_NUMPY, reason="vector backend requires numpy"
    )
    def test_object_matches_vector_backend(self, monkeypatch):
        object_tree = _smoke_structure(
            backend="object", monkeypatch=monkeypatch
        )
        vector_tree = _smoke_structure(
            backend="vector", monkeypatch=monkeypatch
        )
        assert object_tree == vector_tree

    @pytest.mark.skipif(
        not HAVE_NUMPY, reason="vector backend requires numpy"
    )
    def test_vector_serial_matches_vector_jobs_2(self, monkeypatch):
        serial = _smoke_structure(
            backend="vector", monkeypatch=monkeypatch
        )
        parallel = _smoke_structure(
            jobs=2, backend="vector", monkeypatch=monkeypatch
        )
        assert serial == parallel

    def test_disabled_profiler_records_nothing(self, monkeypatch):
        from repro.experiments.chaos import resolve_workload

        monkeypatch.delenv(ENGINE_ENV, raising=False)
        runner = resolve_workload("wordcount").runner(2.0)
        generator = CampaignGenerator(
            PROFILES["smoke"],
            CampaignTargets.from_graph(heron_wordcount_graph()),
            seed=1,
        )
        runner.run(generator, 1, executor=SerialExecutor())
        assert active_profiler().tree().children == {}
