"""Unit tests for the process-local metrics registry."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    active_registry,
    metering,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labels_keep_series_separate(self):
        counter = Counter("ticks_total")
        counter.inc(runtime="flink")
        counter.inc(3, runtime="heron")
        assert counter.value(runtime="flink") == 1.0
        assert counter.value(runtime="heron") == 3.0
        assert counter.value(runtime="missing") == 0.0

    def test_bound_handle_updates_parent(self):
        counter = Counter("ticks_total")
        bound = counter.labels(runtime="flink")
        bound.inc()
        bound.inc(4)
        assert counter.value(runtime="flink") == 5.0

    def test_negative_increment_rejected(self):
        counter = Counter("ticks_total")
        with pytest.raises(TelemetryError):
            counter.inc(-1.0)

    def test_invalid_name_rejected(self):
        for name in ("Bad", "9lives", "has-dash", ""):
            with pytest.raises(TelemetryError):
                Counter(name)

    def test_render_text(self):
        counter = Counter("ticks_total")
        counter.inc(2, runtime="flink")
        assert counter.render_text() == [
            "# TYPE ticks_total counter",
            'ticks_total{runtime="flink"} 2',
        ]


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("parallelism")
        gauge.set(4.0, operator="worker")
        gauge.set(2.0, operator="worker")
        assert gauge.value(operator="worker") == 2.0

    def test_bound_handle(self):
        gauge = Gauge("parallelism")
        gauge.labels(operator="worker").set(8.0)
        assert gauge.value(operator="worker") == 8.0


class TestHistogram:
    def test_count_sum_and_cumulative_buckets(self):
        hist = Histogram("step_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        assert hist.count() == 4
        assert hist.sum() == pytest.approx(6.05)
        sample = hist.snapshot()["samples"][0]
        assert sample["buckets"] == {"0.1": 1, "1": 3, "+Inf": 4}

    def test_boundary_value_falls_in_its_bucket(self):
        # bisect_left: an observation equal to a bound lands in that
        # bound's bucket (le semantics).
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.0)
        sample = hist.snapshot()["samples"][0]
        assert sample["buckets"]["1"] == 1

    def test_invalid_buckets_rejected(self):
        with pytest.raises(TelemetryError):
            Histogram("h", buckets=())
        with pytest.raises(TelemetryError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(TelemetryError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_render_text_has_bucket_count_sum(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(0.5, op="a")
        lines = hist.render_text()
        assert lines[0] == "# TYPE h histogram"
        assert 'h_bucket{op="a",le="1"} 1' in lines
        assert 'h_bucket{op="a",le="+Inf"} 1' in lines
        assert 'h_count{op="a"} 1' in lines
        assert 'h_sum{op="a"} 0.5' in lines


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total")
        second = registry.counter("a_total")
        assert first is second

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.gauge("a_total")

    def test_names_and_get(self):
        registry = MetricsRegistry()
        registry.gauge("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]
        assert registry.get("a") is not None
        assert registry.get("missing") is None

    def test_render_text_sorted_by_family(self):
        registry = MetricsRegistry()
        registry.counter("z_total").inc()
        registry.gauge("a_value").set(1.0)
        text = registry.render_text()
        assert text.index("a_value") < text.index("z_total")
        assert text.endswith("\n")

    def test_render_json_parses(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2, runtime="flink")
        payload = json.loads(registry.render_json())
        [family] = payload["metrics"]
        assert family["name"] == "a_total"
        assert family["type"] == "counter"
        assert family["samples"] == [
            {"labels": {"runtime": "flink"}, "value": 2.0}
        ]

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_text() == ""


class TestNullRegistry:
    def test_disabled_and_inert(self):
        registry = NullRegistry()
        assert registry.enabled is False
        counter = registry.counter("a_total")
        counter.inc(5)
        counter.labels(runtime="flink").inc()
        assert counter.value() == 0.0
        gauge = registry.gauge("g")
        gauge.set(3.0)
        gauge.labels(op="a").set(3.0)
        assert gauge.value() == 0.0
        hist = registry.histogram("h")
        hist.observe(1.0)
        hist.labels(op="a").observe(1.0)
        assert hist.count() == 0

    def test_shared_instance_is_disabled(self):
        assert NULL_REGISTRY.enabled is False


class TestMergeSnapshot:
    def test_counters_accumulate(self):
        worker_a, worker_b = MetricsRegistry(), MetricsRegistry()
        worker_a.counter("cells_total").inc(2, profile="mixed")
        worker_b.counter("cells_total").inc(3, profile="mixed")
        worker_b.counter("cells_total").inc(1, profile="smoke")
        parent = MetricsRegistry()
        parent.counter("cells_total").inc(1, profile="mixed")
        parent.merge_snapshot(worker_a.snapshot())
        parent.merge_snapshot(worker_b.snapshot())
        counter = parent.counter("cells_total")
        assert counter.value(profile="mixed") == 6.0
        assert counter.value(profile="smoke") == 1.0

    def test_gauges_take_incoming_value(self):
        worker = MetricsRegistry()
        worker.gauge("parallelism").set(8.0, op="flatmap")
        parent = MetricsRegistry()
        parent.gauge("parallelism").set(2.0, op="flatmap")
        parent.merge_snapshot(worker.snapshot())
        assert parent.gauge("parallelism").value(op="flatmap") == 8.0

    def test_histograms_merge_counts_and_sums(self):
        worker_a, worker_b = MetricsRegistry(), MetricsRegistry()
        for value in (0.0002, 0.01, 100.0):
            worker_a.histogram("step_seconds").observe(value)
        worker_b.histogram("step_seconds").observe(0.01)
        parent = MetricsRegistry()
        parent.merge_snapshot(worker_a.snapshot())
        parent.merge_snapshot(worker_b.snapshot())
        merged = parent.histogram("step_seconds")
        assert merged.count() == 4
        assert merged.sum() == pytest.approx(100.0202)
        # Merging must be equivalent to having observed directly.
        direct = MetricsRegistry()
        for value in (0.0002, 0.01, 100.0, 0.01):
            direct.histogram("step_seconds").observe(value)
        assert parent.snapshot() == direct.snapshot()

    def test_merge_then_snapshot_round_trips(self):
        worker = MetricsRegistry()
        worker.counter("a_total", "help a").inc(4)
        worker.gauge("g", "help g").set(7.0, op="x")
        worker.histogram("h").observe(0.3, op="x")
        parent = MetricsRegistry()
        parent.merge_snapshot(worker.snapshot())
        assert parent.snapshot() == worker.snapshot()

    def test_histogram_bucket_mismatch_raises(self):
        worker = MetricsRegistry()
        worker.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1.0, 2.0, 3.0)).observe(0.5)
        with pytest.raises(TelemetryError, match="bucket bounds"):
            parent.merge_snapshot(worker.snapshot())

    def test_kind_mismatch_raises(self):
        worker = MetricsRegistry()
        worker.counter("m_total").inc()
        parent = MetricsRegistry()
        parent.gauge("m_total").set(1.0)
        with pytest.raises(TelemetryError, match="already registered"):
            parent.merge_snapshot(worker.snapshot())

    def test_malformed_snapshot_raises(self):
        parent = MetricsRegistry()
        with pytest.raises(TelemetryError, match="metrics"):
            parent.merge_snapshot({})
        with pytest.raises(TelemetryError, match="family"):
            parent.merge_snapshot({"metrics": ["nonsense"]})
        with pytest.raises(TelemetryError, match="unknown"):
            parent.merge_snapshot({"metrics": [{
                "name": "m", "type": "summary", "help": "",
                "samples": [{"labels": {}, "value": 1.0}],
            }]})

    def test_empty_metrics_list_is_a_no_op(self):
        parent = MetricsRegistry()
        parent.counter("kept_total").inc()
        parent.merge_snapshot({"metrics": []})
        assert parent.counter("kept_total").value() == 1.0

    def test_non_mapping_snapshot_raises(self):
        parent = MetricsRegistry()
        with pytest.raises(TelemetryError, match="expected a mapping"):
            parent.merge_snapshot(None)
        with pytest.raises(TelemetryError, match="expected a mapping"):
            parent.merge_snapshot([("metrics", [])])

    def test_mismatched_label_sets_within_family_raise(self):
        parent = MetricsRegistry()
        with pytest.raises(TelemetryError, match="label set"):
            parent.merge_snapshot({"metrics": [{
                "name": "m_total", "type": "counter", "help": "",
                "samples": [
                    {"labels": {"op": "a"}, "value": 1.0},
                    {"labels": {"runtime": "flink"}, "value": 1.0},
                ],
            }]})

    def test_label_set_must_match_registered_series(self):
        parent = MetricsRegistry()
        parent.counter("m_total").inc(1, op="a")
        with pytest.raises(TelemetryError, match="label set"):
            parent.merge_snapshot({"metrics": [{
                "name": "m_total", "type": "counter", "help": "",
                "samples": [
                    {"labels": {"runtime": "flink"}, "value": 2.0},
                ],
            }]})
        # The rejected sample must not have been half-applied.
        assert parent.counter("m_total").value(op="a") == 1.0

    def test_non_numeric_value_raises(self):
        parent = MetricsRegistry()
        for bad in ("7", None, True):
            with pytest.raises(TelemetryError, match="not a number"):
                parent.merge_snapshot({"metrics": [{
                    "name": "m_total", "type": "counter", "help": "",
                    "samples": [{"labels": {}, "value": bad}],
                }]})

    def _histogram_sample(self, buckets):
        return {"metrics": [{
            "name": "h", "type": "histogram", "help": "",
            "samples": [
                {"labels": {}, "buckets": buckets, "sum": 1.0},
            ],
        }]}

    def test_non_numeric_bucket_bound_raises(self):
        parent = MetricsRegistry()
        with pytest.raises(TelemetryError, match="non-numeric"):
            parent.merge_snapshot(
                self._histogram_sample({"tiny": 1, "+Inf": 1})
            )

    def test_decreasing_cumulative_counts_raise(self):
        parent = MetricsRegistry()
        with pytest.raises(TelemetryError, match="decrease"):
            parent.merge_snapshot(
                self._histogram_sample({"1": 5, "2": 3, "+Inf": 5})
            )

    def test_inf_below_last_finite_bucket_raises(self):
        parent = MetricsRegistry()
        with pytest.raises(TelemetryError, match="below the last"):
            parent.merge_snapshot(
                self._histogram_sample({"1": 2, "2": 5, "+Inf": 4})
            )

    def test_non_integer_bucket_count_raises(self):
        parent = MetricsRegistry()
        with pytest.raises(TelemetryError, match="not an integer"):
            parent.merge_snapshot(
                self._histogram_sample({"1": 1.5, "+Inf": 2})
            )

    def test_rejected_histogram_leaves_registry_unchanged(self):
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        before = parent.snapshot()
        with pytest.raises(TelemetryError):
            parent.merge_snapshot(
                self._histogram_sample({"1": 5, "2": 3, "+Inf": 5})
            )
        assert parent.snapshot() == before

    def test_null_registry_merge_is_inert(self):
        worker = MetricsRegistry()
        worker.counter("a_total").inc(5)
        null = NullRegistry()
        null.merge_snapshot(worker.snapshot())
        assert null.counter("a_total").value() == 0.0


class TestAmbient:
    def test_default_is_null(self):
        assert active_registry() is NULL_REGISTRY

    def test_metering_nests_and_restores(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with metering(outer):
            assert active_registry() is outer
            with metering(inner):
                assert active_registry() is inner
            assert active_registry() is outer
        assert active_registry() is NULL_REGISTRY
