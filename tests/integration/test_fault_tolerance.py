"""End-to-end fault campaign (ISSUE acceptance criteria).

One deterministic campaign — rejected rescale at t=0, 50% source metric
dropout at t=420 for 180 s, flatmap instance crash at t=780 — against
the Heron wordcount job. The hardened manager must hold through the
dropout and re-converge after the crash; legacy DS2 must reproduce the
spurious scale-down the hardening exists to prevent.
"""

import pytest

from repro.experiments.comparison import HERON_POLICY_INTERVAL
from repro.experiments.fault_tolerance import (
    CRASH_AT,
    DROPOUT_AT,
    DROPOUT_SECONDS,
    default_fault_schedule,
    fault_tolerance_report,
    run_ds2_faults,
)
from repro.workloads.wordcount import COUNT, FLATMAP


@pytest.fixture(scope="module")
def hardened():
    return run_ds2_faults(tick=1.0, hardened=True)


@pytest.fixture(scope="module")
def legacy():
    return run_ds2_faults(tick=1.0, hardened=False)


class TestRescaleFailureRecovery:
    def test_first_attempt_rejected_then_retried(self, hardened):
        assert hardened.failed_rescales == 1
        failure = hardened.run.loop_result.failed_rescales[0]
        assert failure.attempt == 1
        # The retried reconfiguration lands fully — the job reaches the
        # paper's optimum in one applied step, never a partial config.
        assert hardened.steps == 1
        event = hardened.run.loop_result.events[0]
        assert event.applied[FLATMAP] == hardened.optimal_flatmap
        assert event.applied[COUNT] == hardened.optimal_count
        assert event.time > failure.time


class TestMetricDropout:
    def test_hardened_holds_through_dropout(self, hardened):
        assert hardened.held_through_dropout

    def test_legacy_spuriously_scales_down(self, legacy):
        assert not legacy.held_through_dropout
        end = DROPOUT_AT + DROPOUT_SECONDS + HERON_POLICY_INTERVAL
        # The halved source telemetry halves the whole job.
        assert legacy.min_parallelism_between(
            FLATMAP, DROPOUT_AT, end
        ) < legacy.optimal_flatmap
        assert legacy.min_parallelism_between(
            COUNT, DROPOUT_AT, end
        ) < legacy.optimal_count

    def test_legacy_pays_extra_reconfigurations(self, hardened, legacy):
        # Scale-down into the dropout plus scale-up out of it: two
        # extra outages relative to the hardened run.
        assert legacy.steps >= hardened.steps + 2


class TestCrashRecovery:
    def test_crash_outage_accounted_and_window_truncated(self, hardened):
        # The recovery outage spans the crash window; the restart at
        # its end discards in-flight counters, truncating the window
        # that covers the redeploy.
        after = [
            w for w in hardened.run.loop_result.windows
            if w.end > CRASH_AT
        ]
        assert after, "no metrics window covers the crash"
        assert any(w.outage_fraction > 0.0 for w in after)
        assert any(w.truncated for w in after)

    def test_reconverges_without_overshoot(self, hardened):
        # Recovery restores the pre-crash configuration; no scaling
        # decision after the crash (re-convergence in zero extra steps,
        # well within the <= 3 bound, and thus no overshoot).
        after = [
            e for e in hardened.run.loop_result.events
            if e.time > CRASH_AT
        ]
        assert len(after) <= 3
        for event in after:
            assert event.applied[FLATMAP] <= hardened.optimal_flatmap
            assert event.applied[COUNT] <= hardened.optimal_count
        assert hardened.final_flatmap == hardened.optimal_flatmap
        assert hardened.final_count == hardened.optimal_count


class TestReporting:
    def test_report_renders_all_rows(self, hardened, legacy):
        table = fault_tolerance_report([hardened, legacy])
        assert "ds2" in table and "ds2-legacy" in table
        assert "held dropout" in table

    def test_schedule_is_deterministic(self):
        assert default_fault_schedule(seed=7) == default_fault_schedule(
            seed=7
        )
