"""End-to-end tests of the paper's headline claims.

Each test corresponds to a sentence in the paper's abstract or
introduction and drives the full stack: workload -> engine ->
instrumentation -> DS2 -> rescaling mechanism.
"""

import pytest

from repro.core.controller import ControlLoop
from repro.core.manager import DS2Controller, ManagerConfig
from repro.core.policy import DS2Policy, ExecutionModel
from repro.core import compute_optimal_parallelism
from repro.dataflow.physical import PhysicalPlan
from repro.engine.runtimes import (
    FlinkRuntime,
    HeronRuntime,
    TimelyRuntime,
)
from repro.engine.simulator import EngineConfig, Simulator
from repro.workloads.nexmark import get_query
from repro.workloads.wordcount import (
    COUNT,
    FLATMAP,
    heron_wordcount_graph,
    heron_wordcount_optimum,
)


class TestSingleStepClaim:
    """'DS2 converges to the optimal, backpressure-free configuration
    in a single step' (abstract, for the Heron wordcount)."""

    def test_one_window_is_enough(self):
        graph = heron_wordcount_graph()
        plan = PhysicalPlan(graph, {name: 1 for name in graph.names})
        sim = Simulator(
            plan, HeronRuntime(),
            EngineConfig(tick=0.5, track_record_latency=False),
        )
        sim.run_for(60.0)  # one default Heron metrics interval
        window = sim.collect_metrics()
        result = compute_optimal_parallelism(
            graph, window, sim.source_target_rates()
        )
        optimum = heron_wordcount_optimum()
        assert result.estimates[FLATMAP].optimal_parallelism == (
            optimum[FLATMAP]
        )
        assert result.estimates[COUNT].optimal_parallelism == (
            optimum[COUNT]
        )

    def test_decision_is_backpressure_free_and_minimal(self):
        graph = heron_wordcount_graph()
        optimum = heron_wordcount_optimum()

        def run_fixed(flatmap, count):
            plan = PhysicalPlan(
                graph,
                {"source": 1, FLATMAP: flatmap, COUNT: count, "sink": 1},
            )
            sim = Simulator(
                plan, HeronRuntime(),
                EngineConfig(tick=0.5, track_record_latency=False),
            )
            sim.run_for(400.0)
            return sim

        at_optimum = run_fixed(optimum[FLATMAP], optimum[COUNT])
        assert at_optimum.backpressured_operators() == ()
        # One instance less on either operator cannot keep up: queues
        # grow without bound (Heron's huge queues absorb it for a while,
        # so check backlog growth rather than the signal).
        one_less = run_fixed(optimum[FLATMAP] - 1, optimum[COUNT])
        assert (
            one_less.total_queued_records()
            > at_optimum.total_queued_records() * 2
        )


class TestAtMostThreeSteps:
    """'In all experiments DS2 takes at most three steps to reach the
    optimal configuration' (introduction)."""

    @pytest.mark.parametrize("query_name", ["Q1", "Q2", "Q8"])
    @pytest.mark.parametrize("initial", [8, 20])
    def test_nexmark_flink(self, query_name, initial):
        query = get_query(query_name)
        graph = query.flink_graph()
        plan = PhysicalPlan(
            graph,
            query.initial_parallelism(graph, initial),
            max_parallelism=36,
        )
        sim = Simulator(
            plan, FlinkRuntime(),
            EngineConfig(tick=0.25, track_record_latency=False),
        )
        controller = DS2Controller(
            DS2Policy(graph),
            ManagerConfig(warmup_intervals=1, activation_intervals=5),
        )
        loop = ControlLoop(sim, controller, policy_interval=30.0)
        result = loop.run(1200.0)
        steps = result.scaling_steps
        assert steps <= 3
        assert (
            sim.plan.parallelism_of(query.main_operator)
            == query.indicated_flink
        )
        # The converged configuration sustains at least the full source
        # rate (it may exceed it while draining the backlog the
        # under-provisioned phases accumulated).
        window = result.windows[-1]
        achieved = sum(window.source_observed_rates.values())
        target = sum(sim.source_target_rates().values())
        assert achieved >= target * 0.98


class TestTimelyGlobalScaling:
    """Section 4.3: on Timely, DS2 sums per-operator optima into a
    global worker count — 4 for every Nexmark query (Figure 9)."""

    @pytest.mark.parametrize("query_name", ["Q1", "Q11"])
    def test_worker_count(self, query_name):
        query = get_query(query_name)
        graph = query.timely_graph()
        plan = PhysicalPlan(graph, {name: 2 for name in graph.names})
        sim = Simulator(
            plan, TimelyRuntime(),
            EngineConfig(tick=0.25, track_record_latency=False),
        )
        controller = DS2Controller(
            DS2Policy(graph, ExecutionModel.GLOBAL),
            ManagerConfig(warmup_intervals=1, activation_intervals=3),
        )
        loop = ControlLoop(
            sim, controller, policy_interval=30.0,
            scalable_operators=graph.names,
        )
        loop.run(600.0)
        assert sim.plan.parallelism_of(query.main_operator) == 4


class TestStability:
    """SASO stability: once converged, DS2 does not oscillate."""

    def test_no_actions_after_convergence(self):
        query = get_query("Q1")
        graph = query.flink_graph()
        plan = PhysicalPlan(
            graph, query.initial_parallelism(graph, 12),
            max_parallelism=36,
        )
        sim = Simulator(
            plan, FlinkRuntime(),
            EngineConfig(tick=0.25, track_record_latency=False),
        )
        controller = DS2Controller(
            DS2Policy(graph),
            ManagerConfig(warmup_intervals=1, activation_intervals=5),
        )
        loop = ControlLoop(sim, controller, policy_interval=30.0)
        result = loop.run(2400.0)
        events = result.events
        assert events, "expected at least one scaling step"
        # Nothing happens in the last half of the run.
        last_action = events[-1].time
        assert last_action < 1200.0

    def test_monotone_convergence_no_overshoot(self):
        """Scale-ups approach the optimum from below: no intermediate
        decision exceeds the final configuration (Property 1)."""
        query = get_query("Q3")
        graph = query.flink_graph()
        plan = PhysicalPlan(
            graph, query.initial_parallelism(graph, 8),
            max_parallelism=36,
        )
        sim = Simulator(
            plan, FlinkRuntime(),
            EngineConfig(tick=0.25, track_record_latency=False),
        )
        controller = DS2Controller(
            DS2Policy(graph),
            ManagerConfig(warmup_intervals=1, activation_intervals=5),
        )
        loop = ControlLoop(sim, controller, policy_interval=30.0)
        result = loop.run(1500.0)
        values = [
            e.applied[query.main_operator] for e in result.events
        ]
        assert values == sorted(values)
        assert values[-1] == query.indicated_flink
