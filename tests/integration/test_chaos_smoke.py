"""Fast chaos smoke campaign (tier-1 CI).

One small profile × two sampled campaigns on the Heron wordcount,
plus the per-runtime recovery comparison at reduced scale — enough to
catch wiring regressions in the campaign subsystem without the cost of
the full ``repro run chaos`` batch (which lives in benchmarks).
"""

import pytest

from repro.experiments.chaos import (
    chaos_report,
    recovery_distributions,
    resolve_profile,
    run_chaos,
)
from repro.errors import FaultInjectionError


@pytest.fixture(scope="module")
def smoke_result():
    return run_chaos(
        profile="smoke", campaigns=2, seed=1, include_recovery=False
    )


class TestSmokeCampaign:
    def test_full_matrix_is_scored(self, smoke_result):
        assert smoke_result.profile == "smoke"
        assert smoke_result.campaigns == 2
        # 2 campaigns × 3 controllers.
        assert len(smoke_result.scorecards) == 6
        assert set(smoke_result.aggregates) == {
            "ds2",
            "ds2-legacy",
            "dhalion",
        }

    def test_faults_actually_fired(self, smoke_result):
        """Every campaign injects at least one fault into every run —
        otherwise the scorecards measure a healthy job."""
        assert all(
            card.downtime_fraction > 0
            for card in smoke_result.scorecards
        )

    def test_hardened_ds2_is_not_beaten(self, smoke_result):
        ds2 = smoke_result.aggregates["ds2"].mean_score
        assert ds2 <= smoke_result.aggregates["ds2-legacy"].mean_score
        assert ds2 < smoke_result.aggregates["dhalion"].mean_score
        assert smoke_result.ranking()[0] == "ds2"

    def test_replay_is_byte_identical(self, smoke_result):
        replay = run_chaos(
            profile="smoke", campaigns=2, seed=1, include_recovery=False
        )
        assert replay.scorecards == smoke_result.scorecards
        assert chaos_report(replay) == chaos_report(smoke_result)

    def test_report_mentions_every_controller(self, smoke_result):
        report = chaos_report(smoke_result)
        for name in ("ds2", "ds2-legacy", "dhalion"):
            assert name in report


class TestRecoveryComparison:
    def test_runtimes_have_distinct_distributions(self):
        samples = recovery_distributions(campaigns=1, seed=1)
        assert set(samples) == {"flink", "timely", "heron"}
        means = {
            runtime: sum(values) / len(values)
            for runtime, values in samples.items()
        }
        # Full savepoint restore > container restart > peer re-sync.
        assert means["flink"] > means["heron"] > means["timely"]
        # Same crash schedule everywhere: equal sample counts.
        counts = {len(values) for values in samples.values()}
        assert len(counts) == 1


class TestProfileResolution:
    def test_known_profile_resolves(self):
        assert resolve_profile("mixed").name == "mixed"

    def test_unknown_profile_raises(self):
        with pytest.raises(FaultInjectionError, match="unknown chaos"):
            resolve_profile("volcano")
