"""Tests for the aggregated run-report builder and its renderers.

The committed fixtures (``smoke_checkpoint.jsonl`` +
``golden_report.json``) freeze a 2-campaign smoke run recorded with
progress heartbeats and span profiling: the JSON renderer over the
committed journal must stay byte-identical to the committed golden
report (also gated as a ``scripts/check.sh`` stage).
"""

import json
import os

import pytest

from repro.errors import CheckpointError, TelemetryError
from repro.faults.checkpoint import CheckpointJournal, JournalHeader
from repro.telemetry.progress import CellEvent
from repro.telemetry.reports import (
    REPORT_RENDERERS,
    REPORT_SCHEMA_VERSION,
    build_report,
    render_report_json,
    render_report_markdown,
    render_report_text,
)

FIXTURES = os.path.dirname(__file__)
SMOKE_JOURNAL = os.path.join(FIXTURES, "smoke_checkpoint.jsonl")
GOLDEN_REPORT = os.path.join(FIXTURES, "golden_report.json")
GOLDEN_TRACE = os.path.join(
    FIXTURES, os.pardir, "telemetry", "golden_trace.jsonl"
)


class TestGoldenReport:
    def test_json_render_matches_committed_golden(self):
        report = build_report(SMOKE_JOURNAL)
        with open(GOLDEN_REPORT, encoding="utf-8") as handle:
            assert render_report_json(report) == handle.read()

    def test_payload_shape(self):
        payload = build_report(SMOKE_JOURNAL).to_payload()
        assert payload["schema"] == REPORT_SCHEMA_VERSION
        assert payload["header"]["profile"] == "smoke"
        assert payload["coverage"] == {
            "expected": 6,
            "completed": 6,
            "quarantined": 0,
            "missing": 0,
        }
        assert set(payload["aggregates"]) == {
            "ds2", "ds2-legacy", "dhalion",
        }
        assert len(payload["cells"]) == 6
        assert payload["heartbeats"] == {"done": 6, "start": 6}
        assert payload["durations"]["cells_timed"] == 6
        span_names = {
            child["name"] for child in payload["spans"]["children"]
        }
        assert "engine.tick" in span_names
        assert "controller.decide" in span_names
        assert payload["audits"]["audited_cells"] == 6

    def test_text_render_headlines(self):
        text = render_report_text(build_report(SMOKE_JOURNAL))
        assert "profile=smoke" in text
        assert "cells: 6/6 completed, 0 quarantined" in text
        assert "heartbeats:" in text
        assert "engine.tick" in text
        assert text.endswith("\n")

    def test_markdown_render_tables(self):
        text = render_report_markdown(build_report(SMOKE_JOURNAL))
        assert text.startswith("# Chaos run report")
        assert "| controller |" in text
        assert "## Heartbeats" in text
        assert "## Span rollup" in text

    def test_renderer_registry_covers_all_formats(self):
        assert set(REPORT_RENDERERS) == {"text", "json", "markdown"}


class TestTraceJoin:
    def test_trace_summary_folds_into_report(self):
        report = build_report(SMOKE_JOURNAL, trace=GOLDEN_TRACE)
        assert report.trace is not None
        payload = report.to_payload()
        assert payload["trace"]["events"] == report.trace.events
        assert "dropped" in payload["trace"]
        text = render_report_text(report)
        assert "trace:" in text

    def test_invalid_trace_raises_telemetry_error(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(TelemetryError):
            build_report(SMOKE_JOURNAL, trace=str(bad))


class TestInterruptedRuns:
    def _journal_with_open_cell(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal.open(
            path,
            JournalHeader(
                profile="smoke",
                workload="wordcount",
                seed=1,
                campaigns=1,
                controllers=("ds2",),
            ),
        )
        journal.record_heartbeat(
            CellEvent(
                kind="start",
                index=0,
                key=(1, 0, "ds2"),
                completed=0,
                total=1,
            ).to_payload()
        )
        journal.close()
        return path

    def test_report_names_interrupted_cells(self, tmp_path):
        path = self._journal_with_open_cell(tmp_path)
        report = build_report(path)
        assert report.interrupted == ("seed=1 0/ds2",)
        assert report.cells_completed == 0
        text = render_report_text(report)
        assert "interrupted while executing: seed=1 0/ds2" in text
        markdown = render_report_markdown(report)
        assert "seed=1 0/ds2" in markdown


class TestErrors:
    def test_missing_journal_raises_checkpoint_error(self, tmp_path):
        with pytest.raises((CheckpointError, OSError)):
            build_report(str(tmp_path / "absent.jsonl"))

    def test_corrupt_journal_raises_checkpoint_error(self, tmp_path):
        with open(SMOKE_JOURNAL, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        # Corrupt a mid-file record: hard rejection, not a torn tail.
        lines[2] = lines[2][:-10] + '"BROKEN"}'
        path = tmp_path / "corrupt.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError):
            build_report(str(path))


class TestFixtureIntegrity:
    def test_committed_journal_has_heartbeats_and_spans(self):
        kinds = set()
        span_cells = 0
        with open(SMOKE_JOURNAL, encoding="utf-8") as handle:
            for line in handle:
                record = json.loads(line)
                kinds.add(record.get("record"))
                if record.get("record") == "cell" and record.get(
                    "spans"
                ):
                    span_cells += 1
        assert kinds == {"header", "cell", "heartbeat"}
        assert span_cells == 6
