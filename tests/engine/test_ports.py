"""Tests for per-input-port queues on multi-input operators."""

import pytest

from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    join,
    map_operator,
    sink,
    source,
)
from repro.dataflow.physical import PhysicalPlan
from repro.dataflow.state import SavepointModel
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig, Simulator


def join_graph(fast_rate=50_000.0, slow_rate=500.0, join_cost=1e-5):
    """Two sources of very different rates feeding one join."""
    return LogicalGraph(
        [
            source("fast", rate=RateSchedule.constant(fast_rate)),
            source("slow", rate=RateSchedule.constant(slow_rate)),
            join("merge", costs=CostModel(processing_cost=join_cost),
                 selectivity=0.1),
            sink("snk"),
        ],
        [
            Edge("fast", "merge"),
            Edge("slow", "merge"),
            Edge("merge", "snk"),
        ],
    )


def simulator(graph, parallelism, **config):
    config.setdefault("tick", 0.1)
    config.setdefault("track_record_latency", False)
    config.setdefault("instrumentation_enabled", False)
    return Simulator(
        PhysicalPlan(graph, parallelism),
        FlinkRuntime(),
        EngineConfig(**config),
    )


class TestPortStructure:
    def test_join_instances_have_one_queue_per_input(self):
        sim = simulator(join_graph(), {"merge": 2})
        for inst in sim._instances["merge"]:
            assert set(inst.ports) == {"fast", "slow"}

    def test_sources_have_no_ports(self):
        sim = simulator(join_graph(), {"merge": 1})
        for inst in sim._instances["fast"]:
            assert inst.ports == {}

    def test_single_input_operator_has_one_port(self, chain_graph):
        sim = Simulator(
            PhysicalPlan(chain_graph, {"worker": 2}),
            FlinkRuntime(),
            EngineConfig(tick=0.1, track_record_latency=False),
        )
        for inst in sim._instances["worker"]:
            assert set(inst.ports) == {"src"}


class TestPortIsolation:
    def test_flooding_input_does_not_starve_the_other(self):
        # The join can only handle ~10K rec/s; the fast source floods
        # it 5x over while the slow source trickles. With per-port
        # buffers the slow records still flow at full rate.
        graph = join_graph(fast_rate=50_000.0, slow_rate=500.0,
                           join_cost=1e-4)
        sim = simulator(graph, {"merge": 1})
        sim.run_for(30.0)
        window = sim.collect_metrics()
        assert window.source_observed_rates["slow"] == pytest.approx(
            500.0, rel=0.05
        )
        # The fast source is the one being backpressured.
        assert window.source_observed_rates["fast"] < 15_000.0

    def test_per_port_backpressure_only_blocks_the_flooder(self):
        graph = join_graph(fast_rate=50_000.0, slow_rate=500.0,
                           join_cost=1e-4)
        sim = simulator(graph, {"merge": 1})
        sim.run_for(30.0)
        instances = sim._instances["merge"]
        fast_fill = max(i.ports["fast"].fill_fraction for i in instances)
        slow_fill = max(i.ports["slow"].fill_fraction for i in instances)
        assert fast_fill > 0.9
        assert slow_fill < 0.5

    def test_proportional_pull_serves_both_ports(self):
        # With ample capacity both inputs are consumed fully.
        graph = join_graph(fast_rate=5_000.0, slow_rate=500.0,
                           join_cost=1e-5)
        sim = simulator(graph, {"merge": 1})
        sim.run_for(20.0)
        window = sim.collect_metrics()
        assert window.observed_processing_rate("merge") == pytest.approx(
            5_500.0, rel=0.02
        )


class TestPortRescale:
    def test_per_port_contents_survive_redeploy(self):
        graph = join_graph(fast_rate=50_000.0, slow_rate=500.0,
                           join_cost=1e-4)
        sim = Simulator(
            PhysicalPlan(graph, {"merge": 1}),
            FlinkRuntime(savepoint=SavepointModel.instant()),
            EngineConfig(
                tick=0.1, track_record_latency=False,
                instrumentation_enabled=False,
            ),
        )
        sim.run_for(10.0)
        before = {
            port: sum(
                i.ports[port].length for i in sim._instances["merge"]
            )
            for port in ("fast", "slow")
        }
        assert before["fast"] > 0
        sim.rescale({"merge": 4})
        after = {
            port: sum(
                i.ports[port].length for i in sim._instances["merge"]
            )
            for port in ("fast", "slow")
        }
        for port in before:
            assert after[port] == pytest.approx(before[port], rel=1e-6)
