"""Unit tests for the Flink/Heron/Timely execution models."""

import pytest

from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    map_operator,
    sink,
    source,
)
from repro.dataflow.physical import InstanceId, PhysicalPlan
from repro.engine.npcompat import HAVE_NUMPY, np
from repro.engine.runtimes import (
    FlinkRuntime,
    HeronRuntime,
    TimelyRuntime,
    _waterfill_values,
)
from repro.errors import EngineError


@pytest.fixture
def graph():
    return LogicalGraph(
        [
            source("src", rate=RateSchedule.constant(100.0)),
            map_operator("m", costs=CostModel(processing_cost=1e-3)),
            sink("snk"),
        ],
        [Edge("src", "m"), Edge("m", "snk")],
    )


class TestFlinkRuntime:
    def test_queue_capacity_in_seconds_of_work(self, graph):
        runtime = FlinkRuntime(buffer_seconds=2.0)
        spec = graph.operator("m")
        # 2 seconds of work at 1ms per record = 2000 records.
        assert runtime.queue_capacity(spec, 1) == pytest.approx(2000.0)

    def test_queue_capacity_guard(self, graph):
        runtime = FlinkRuntime(max_queue_records=500.0)
        spec = graph.operator("m")
        assert runtime.queue_capacity(spec, 1) == 500.0

    def test_budget_is_full_tick_per_instance(self, graph):
        runtime = FlinkRuntime()
        plan = PhysicalPlan(graph, {"m": 3})
        budgets = runtime.budgets(plan, {}, dt=0.1)
        assert all(b == pytest.approx(0.1) for b in budgets.values())
        assert len(budgets) == 5

    def test_core_contention_scales_budgets(self, graph):
        runtime = FlinkRuntime(cores=2)
        plan = PhysicalPlan(graph, {"m": 6})  # 8 instances on 2 cores
        budgets = runtime.budgets(plan, {}, dt=0.1)
        assert budgets[InstanceId("m", 0)] == pytest.approx(0.1 * 2 / 8)

    def test_validation(self):
        with pytest.raises(EngineError):
            FlinkRuntime(buffer_seconds=0.0)
        with pytest.raises(EngineError):
            FlinkRuntime(cores=0)

    def test_blocking_semantics_flags(self):
        runtime = FlinkRuntime()
        assert runtime.sources_blocked_by_backpressure
        assert not runtime.spin_when_idle


class TestHeronRuntime:
    def test_queue_capacity_from_bytes(self, graph):
        runtime = HeronRuntime(queue_bytes=1000.0)
        spec = graph.operator("m")  # default 100 bytes per record
        assert runtime.queue_capacity(spec, 1) == pytest.approx(10.0)

    def test_default_is_100mib(self, graph):
        runtime = HeronRuntime()
        spec = graph.operator("m")
        expected = 100 * 1024 * 1024 / spec.record_bytes
        assert runtime.queue_capacity(spec, 1) == pytest.approx(expected)

    def test_no_instrumentation_overhead(self):
        # Heron gathers the required metrics by default (section 5.6).
        assert HeronRuntime().instrumentation_overhead == 0.0

    def test_higher_backpressure_threshold(self):
        assert HeronRuntime().backpressure_threshold == 0.9


class TestTimelyRuntime:
    def test_unbounded_queues(self, graph):
        runtime = TimelyRuntime()
        assert runtime.queue_capacity(graph.operator("m"), 4) is None

    def test_requires_uniform_parallelism(self, graph):
        runtime = TimelyRuntime()
        plan = PhysicalPlan(graph, {"src": 2, "m": 3, "snk": 2})
        with pytest.raises(EngineError, match="global"):
            runtime.budgets(plan, {}, dt=0.1)

    def test_worker_budget_is_work_conserving(self, graph):
        runtime = TimelyRuntime()
        plan = PhysicalPlan(graph, {name: 2 for name in graph.names})
        demands = {iid: 0.0 for iid in plan.all_instances()}
        # Worker 0's map instance has all the pending work.
        demands[InstanceId("m", 0)] = 1.0
        budgets = runtime.budgets(plan, demands, dt=0.1)
        # The busy instance gets nearly the whole worker tick (idle
        # co-located instances only receive spin leftovers).
        assert budgets[InstanceId("m", 0)] >= 0.09

    def test_budget_split_among_busy_instances(self, graph):
        runtime = TimelyRuntime()
        plan = PhysicalPlan(graph, {name: 1 for name in graph.names})
        demands = {
            InstanceId("src", 0): 1.0,
            InstanceId("m", 0): 1.0,
            InstanceId("snk", 0): 1.0,
        }
        budgets = runtime.budgets(plan, demands, dt=0.3)
        # Three equally hungry instances share one worker evenly.
        assert budgets[InstanceId("m", 0)] == pytest.approx(0.1)

    def test_per_worker_isolation(self, graph):
        runtime = TimelyRuntime()
        plan = PhysicalPlan(graph, {name: 2 for name in graph.names})
        demands = {iid: 1.0 for iid in plan.all_instances()}
        budgets = runtime.budgets(plan, demands, dt=0.3)
        # Each worker runs one instance of each of the 3 operators.
        worker0 = sum(
            b for iid, b in budgets.items() if iid.index == 0
        )
        assert worker0 == pytest.approx(0.3)

    def test_no_backpressure_semantics(self):
        runtime = TimelyRuntime()
        assert not runtime.sources_blocked_by_backpressure
        assert runtime.spin_when_idle


class TestWaterfillEdgeCases:
    """Regressions for the water-filling core's degenerate inputs
    (empty instance set, no active demand)."""

    def test_empty_demand_list_is_empty_allocation(self):
        assert _waterfill_values([], 0.3) == []

    def test_all_zero_demands_get_even_spin_bonus(self):
        # No active instance: the whole worker tick is spin time,
        # spread evenly — never a division by the empty active set.
        assert _waterfill_values([0.0, 0.0, 0.0], 0.3) == pytest.approx(
            [0.1, 0.1, 0.1]
        )

    def test_negative_demands_treated_as_zero(self):
        allocation = _waterfill_values([-1.0, -5.0], 0.2)
        assert allocation == pytest.approx([0.1, 0.1])

    def test_zero_budget(self):
        assert _waterfill_values([1.0, 2.0], 0.0) == [0.0, 0.0]

    def test_mixed_zero_and_positive_demands(self):
        allocation = _waterfill_values([0.0, 0.05, 0.0], 0.3)
        # The busy position is satisfied; the leftover spin bonus is
        # spread over all three.
        assert allocation[1] >= 0.05
        assert sum(allocation) == pytest.approx(0.3)


@pytest.mark.skipif(not HAVE_NUMPY, reason="requires numpy")
class TestBudgetsBatch:
    """budgets_batch must agree exactly with the per-InstanceId
    budgets path — it backs the vector engine backend."""

    def as_demand_arrays(self, plan, demands):
        return {
            name: np.asarray(
                [
                    demands[InstanceId(name, index)]
                    for index in range(plan.parallelism_of(name))
                ],
                dtype=np.float64,
            )
            for name in plan.graph.topological_order()
        }

    @pytest.mark.parametrize(
        "runtime_cls", [FlinkRuntime, HeronRuntime, TimelyRuntime]
    )
    def test_matches_scalar_budgets(self, graph, runtime_cls):
        runtime = runtime_cls()
        plan = PhysicalPlan(graph, {name: 3 for name in graph.names})
        demands = {
            iid: 0.01 * (1 + index)
            for index, iid in enumerate(plan.all_instances())
        }
        scalar = runtime.budgets(plan, demands, dt=0.25)
        batch = runtime.budgets_batch(
            plan, self.as_demand_arrays(plan, demands), dt=0.25
        )
        for name in plan.graph.topological_order():
            for index in range(plan.parallelism_of(name)):
                assert batch[name][index] == (
                    scalar[InstanceId(name, index)]
                ), (name, index)

    def test_timely_zero_demand_worker(self, graph):
        runtime = TimelyRuntime()
        plan = PhysicalPlan(graph, {name: 2 for name in graph.names})
        demands = {iid: 0.0 for iid in plan.all_instances()}
        demands[InstanceId("m", 0)] = 1.0
        scalar = runtime.budgets(plan, demands, dt=0.1)
        batch = runtime.budgets_batch(
            plan, self.as_demand_arrays(plan, demands), dt=0.1
        )
        # Worker 1 has no active demand at all: pure spin split.
        for name in plan.graph.topological_order():
            assert batch[name][1] == scalar[InstanceId(name, 1)]
            assert batch[name][1] == pytest.approx(0.1 / 3)
