"""Object vs vector engine backend equivalence.

The ``vector`` (struct-of-arrays) backend must be *bit-identical* to
the ``object`` backend — same TickStats, same MetricsWindows, same
observability accessor values, same errors — through rescales and
instance crashes. Equality here is exact (``==`` on floats), not
approximate: the vector backend replays the object backend's float64
operations operation for operation (see ``docs/engine.md``).

These tests drive full campaigns over the representative cells: the
smoke wordcount pipeline, the windowed Nexmark Q5 job (Flink and Heron
runtimes), and a Timely deployment (shared-worker water-filling
budgets).
"""

import random

import pytest

from repro.dataflow.physical import PhysicalPlan
from repro.engine.npcompat import HAVE_NUMPY
from repro.engine.runtimes import FlinkRuntime, HeronRuntime, TimelyRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.engine.vectorized import ENGINE_ENV, resolve_backend
from repro.errors import EngineError
from repro.workloads.nexmark import get_query
from repro.workloads.wordcount import (
    flink_wordcount_graph,
    flink_wordcount_initial_parallelism,
)

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vector backend requires numpy"
)


def window_fingerprint(window):
    """Everything a MetricsWindow reports, in comparable form."""
    return (
        window.start,
        window.end,
        sorted(window.instances.items()),
        sorted(window.health.items()),
        window.source_observed_rates,
        window.outage_fraction,
        window.completeness,
        window.registered_parallelism,
        window.truncated,
    )


def accessor_fingerprint(sim):
    """The Simulator observability accessors, all operators."""
    return (
        sim.time,
        sim.total_queued_records(),
        sim.pending_records(),
        tuple(sim.backpressured_operators()),
        {
            name: (
                sim.queue_length(name),
                sim.pending_records(name),
                sim.max_fill_fraction(name),
                sim.utilization(name),
            )
            for name in sim.graph.topological_order()
        },
    )


def run_campaign(sim, ticks, rescale=None, fail=None):
    """Three phases of ``ticks`` steps with a collection after each;
    a rescale after phase 0 and an instance crash after phase 1.
    Returns every TickStats, window fingerprint, and accessor
    fingerprint produced along the way."""
    trace = []
    for phase in range(3):
        for _ in range(ticks):
            trace.append(sim.step())
        trace.append(accessor_fingerprint(sim))
        trace.append(window_fingerprint(sim.collect_metrics()))
        if phase == 0 and rescale is not None:
            sim.rescale(rescale)
        if phase == 1 and fail is not None:
            trace.append(sim.fail_instance(*fail))
    return trace


def assert_backends_identical(make_sim, ticks, rescale=None, fail=None):
    traces = []
    for backend in ("object", "vector"):
        # Identical jitter streams for both backends.
        random.seed(20180621)  # repro: allow[REPRO102] — deliberate: same jitter both backends
        traces.append(
            run_campaign(make_sim(backend), ticks, rescale, fail)
        )
    assert traces[0] == traces[1]


class TestCampaignEquivalence:
    def test_wordcount_flink(self):
        graph = flink_wordcount_graph()
        parallelism = flink_wordcount_initial_parallelism()
        names = list(parallelism)

        def make_sim(backend):
            plan = PhysicalPlan(graph, parallelism, max_parallelism=24)
            return Simulator(
                plan,
                FlinkRuntime(),
                EngineConfig(tick=0.5, cost_jitter=0.1),
                backend=backend,
            )

        assert_backends_identical(
            make_sim,
            ticks=120,
            rescale={names[1]: max(1, parallelism[names[1]] - 4)},
            fail=(names[2], 0),
        )

    @pytest.mark.parametrize(
        "runtime_cls", [FlinkRuntime, HeronRuntime]
    )
    def test_nexmark_q5_windowed(self, runtime_cls):
        query = get_query("Q5")
        graph = query.flink_graph()
        parallelism = query.initial_parallelism(graph, 32)

        def make_sim(backend):
            plan = PhysicalPlan(graph, parallelism, max_parallelism=36)
            return Simulator(
                plan,
                runtime_cls(),
                EngineConfig(
                    tick=0.25,
                    track_record_latency=True,
                    cost_jitter=0.1,
                ),
                backend=backend,
            )

        assert_backends_identical(
            make_sim,
            ticks=150,
            rescale={"hot_items": 20},
            fail=("hot_items", 3),
        )

    def test_nexmark_q3_timely(self):
        query = get_query("Q3")
        graph = query.timely_graph()
        parallelism = {name: 4 for name in graph.names}

        def make_sim(backend):
            plan = PhysicalPlan(graph, parallelism, max_parallelism=8)
            return Simulator(
                plan, TimelyRuntime(), EngineConfig(tick=0.25),
                backend=backend,
            )

        assert_backends_identical(make_sim, ticks=150)


class TestAccessorEquivalence:
    """Satellite contract: the observability accessors report the same
    values mid-campaign on both backends (not only at collections)."""

    @pytest.fixture()
    def simulators(self):
        query = get_query("Q5")
        graph = query.flink_graph()
        parallelism = query.initial_parallelism(graph, 16)
        sims = []
        for backend in ("object", "vector"):
            plan = PhysicalPlan(graph, parallelism, max_parallelism=36)
            sims.append(
                Simulator(
                    plan,
                    FlinkRuntime(),
                    EngineConfig(tick=0.25, track_record_latency=True),
                    backend=backend,
                )
            )
        return sims

    def test_accessors_identical_every_tick(self, simulators):
        object_sim, vector_sim = simulators
        for _ in range(200):
            object_sim.step()
            vector_sim.step()
            assert accessor_fingerprint(
                object_sim
            ) == accessor_fingerprint(vector_sim)

    def test_utilization_nonzero_under_load(self, simulators):
        object_sim, vector_sim = simulators
        for sim in simulators:
            sim.run_for(30.0)
        utilization = vector_sim.utilization("hot_items")
        assert 0.0 < utilization <= 1.0
        assert utilization == object_sim.utilization("hot_items")

    def test_unknown_operator_rejected_identically(self, simulators):
        for sim in simulators:
            with pytest.raises(EngineError):
                sim.queue_length("nope")
            with pytest.raises(EngineError):
                sim.max_fill_fraction("nope")

    def test_materialized_instances_match(self, simulators):
        """Poking Simulator._instances (as older tests do) sees the
        same queues and window state on both backends."""
        object_sim, vector_sim = simulators
        for sim in simulators:
            sim.run_for(20.0)
        for name in object_sim.graph.topological_order():
            object_instances = object_sim._instances[name]
            vector_instances = vector_sim._instances[name]
            assert len(object_instances) == len(vector_instances)
            for obj, vec in zip(object_instances, vector_instances):
                assert obj.iid == vec.iid
                assert obj.fire_backlog == vec.fire_backlog
                assert obj.total_queue_length == vec.total_queue_length
                assert (obj.window is None) == (vec.window is None)
                if obj.window is not None:
                    assert obj.window.buffered == vec.window.buffered
                    assert obj.window.next_fire == vec.window.next_fire


class TestBackendSelection:
    def test_default_is_object(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_backend(None) == "object"

    def test_env_selects_vector(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "vector")
        assert resolve_backend(None) == "vector"

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "vector")
        assert resolve_backend("object") == "object"

    def test_unknown_backend_rejected(self):
        with pytest.raises(EngineError):
            resolve_backend("gpu")

    def test_simulator_reports_backend(self):
        graph = flink_wordcount_graph()
        plan = PhysicalPlan(
            graph,
            flink_wordcount_initial_parallelism(),
            max_parallelism=24,
        )
        sim = Simulator(
            plan, FlinkRuntime(), EngineConfig(tick=0.5),
            backend="vector",
        )
        assert sim.backend == "vector"
