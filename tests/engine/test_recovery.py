"""Unit tests of the per-runtime crash-recovery cost models."""

import pytest

from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    map_operator,
    sink,
    source,
)
from repro.dataflow.physical import PhysicalPlan
from repro.dataflow.state import SavepointModel
from repro.engine.recovery import (
    ContainerRestartRecovery,
    PeerSyncRecovery,
    RecoveryModel,
    SavepointRecovery,
)
from repro.engine.runtimes import (
    FlinkRuntime,
    HeronRuntime,
    TimelyRuntime,
)
from repro.engine.simulator import EngineConfig, Simulator
from repro.errors import EngineError

#: A wordcount-sized job: 4 GB of counter state on the stateful
#: operator, spread over 4 workers.
STATE = {"src": 0.0, "count": 4e9, "snk": 0.0}
PARALLELISM = {"src": 2, "count": 4, "snk": 1}


class TestSavepointRecovery:
    def test_matches_papers_flink_band(self):
        """Section 5.3: Flink savepoint-and-restore outages for the
        wordcount job land in the 30-50 s band at a few GB of state."""
        outage = SavepointRecovery().outage_seconds(
            STATE, PARALLELISM, "count"
        )
        assert 30.0 <= outage <= 50.0

    def test_charges_total_state_not_the_crashed_slice(self):
        model = SavepointRecovery()
        spread = {"a": 1e9, "b": 3e9}
        lumped = {"a": 4e9, "b": 0.0}
        assert model.outage_seconds(
            spread, {"a": 2, "b": 2}, "a"
        ) == model.outage_seconds(lumped, {"a": 2, "b": 2}, "b")

    def test_same_cost_as_rescaling(self):
        """Flink crash recovery *is* a savepoint restore, so it costs
        exactly what the rescale mechanism charges."""
        savepoint = SavepointModel()
        recovery = SavepointRecovery(savepoint)
        assert recovery.outage_seconds(
            STATE, PARALLELISM, "count"
        ) == pytest.approx(savepoint.outage_seconds(4e9))


class TestPeerSyncRecovery:
    def test_charges_one_workers_shard(self):
        model = PeerSyncRecovery()
        outage = model.outage_seconds(STATE, PARALLELISM, "count")
        expected = (
            model.base_seconds
            + (4e9 / 4) / model.sync_bandwidth
            + model.rejoin_seconds
        )
        assert outage == pytest.approx(expected)

    def test_more_workers_means_cheaper_recovery(self):
        model = PeerSyncRecovery()
        few = model.outage_seconds(STATE, {"count": 2}, "count")
        many = model.outage_seconds(STATE, {"count": 16}, "count")
        assert many < few

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(EngineError):
            PeerSyncRecovery(sync_bandwidth=0.0)


class TestContainerRestartRecovery:
    def test_nearly_constant_in_total_state(self):
        """Only the crashed instance's own slice replays, so doubling
        *other* operators' state leaves the outage unchanged."""
        model = ContainerRestartRecovery()
        small = model.outage_seconds(STATE, PARALLELISM, "count")
        bigger = dict(STATE, src=8e9)
        assert model.outage_seconds(
            bigger, PARALLELISM, "count"
        ) == pytest.approx(small)

    def test_stateless_crash_costs_the_restart_constant(self):
        model = ContainerRestartRecovery()
        assert model.outage_seconds(
            STATE, PARALLELISM, "src"
        ) == pytest.approx(model.restart_seconds)

    def test_rejects_negative_restart(self):
        with pytest.raises(EngineError):
            ContainerRestartRecovery(restart_seconds=-1.0)


class TestDistinctness:
    def test_three_mechanisms_three_costs(self):
        """The acceptance bar: at wordcount-like state sizes the three
        runtimes' recovery outages are clearly distinct — full restore
        > container restart > peer re-sync of one shard."""
        flink = SavepointRecovery().outage_seconds(
            STATE, PARALLELISM, "count"
        )
        timely = PeerSyncRecovery().outage_seconds(
            STATE, PARALLELISM, "count"
        )
        heron = ContainerRestartRecovery().outage_seconds(
            STATE, PARALLELISM, "count"
        )
        assert flink > heron > timely
        # Not merely ordered: separated by a meaningful margin.
        assert flink > 1.5 * heron
        assert heron > 1.2 * timely


class TestRuntimeWiring:
    def test_default_models_per_runtime(self):
        assert isinstance(
            FlinkRuntime().recovery_model(), SavepointRecovery
        )
        assert isinstance(
            TimelyRuntime().recovery_model(), PeerSyncRecovery
        )
        assert isinstance(
            HeronRuntime().recovery_model(), ContainerRestartRecovery
        )

    def test_flink_recovery_uses_the_runtimes_savepoint(self):
        savepoint = SavepointModel(
            base_seconds=1.0, snapshot_bandwidth=1e9,
            redeploy_seconds=2.0,
        )
        model = FlinkRuntime(savepoint=savepoint).recovery_model()
        assert isinstance(model, SavepointRecovery)
        assert model.savepoint == savepoint

    def test_explicit_override_wins(self):
        custom = ContainerRestartRecovery(restart_seconds=99.0)
        assert FlinkRuntime(recovery=custom).recovery_model() is custom
        assert TimelyRuntime(recovery=custom).recovery_model() is custom
        assert HeronRuntime(recovery=custom).recovery_model() is custom


def _chain_simulator(runtime):
    graph = LogicalGraph(
        [
            source("src", rate=RateSchedule.constant(1000.0)),
            map_operator(
                "op",
                costs=CostModel(processing_cost=1e-4),
                state_bytes_per_record=64,
            ),
            sink("snk"),
        ],
        [Edge("src", "op"), Edge("op", "snk")],
    )
    return Simulator(
        PhysicalPlan(graph, {"src": 2, "op": 2, "snk": 2}),
        runtime,
        EngineConfig(tick=0.5, track_record_latency=False),
    )


class TestFailInstanceRouting:
    def test_crash_outage_comes_from_the_recovery_model(self):
        """fail_instance consults the runtime's recovery model, not the
        savepoint model — on Heron a crash costs the container restart
        (~12 s), far below the savepoint-and-redeploy constant."""
        sim = _chain_simulator(HeronRuntime())
        sim.run_for(30.0)
        outage = sim.fail_instance("op", 0)
        restart = ContainerRestartRecovery().restart_seconds
        assert outage == pytest.approx(restart, rel=0.2)
        savepoint_floor = (
            HeronRuntime().savepoint_model().outage_seconds(0.0)
        )
        assert outage < savepoint_floor

    def test_crash_cost_ordering_across_runtimes(self):
        outages = {}
        for name, runtime in (
            ("flink", FlinkRuntime()),
            ("timely", TimelyRuntime()),
            ("heron", HeronRuntime()),
        ):
            sim = _chain_simulator(runtime)
            sim.run_for(30.0)
            outages[name] = sim.fail_instance("op", 0)
        assert outages["flink"] > outages["heron"] > outages["timely"]


class TestAbstractContract:
    def test_cannot_instantiate_the_base(self):
        with pytest.raises(TypeError):
            RecoveryModel()  # type: ignore[abstract]
