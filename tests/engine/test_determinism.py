"""Determinism and discretization-robustness tests.

The entire reproduction depends on two meta-properties of the engine:
runs are bit-for-bit repeatable (same inputs, same trajectory), and
steady-state behaviour does not depend on the tick size chosen.
"""

import pytest

from repro.core.controller import ControlLoop
from repro.core.manager import DS2Controller, ManagerConfig
from repro.core.policy import DS2Policy
from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    flatmap,
    sink,
    source,
)
from repro.dataflow.physical import PhysicalPlan
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig, Simulator


def pipeline(rate=20_000.0):
    return LogicalGraph(
        [
            source("src", rate=RateSchedule.constant(rate)),
            flatmap("op", costs=CostModel(processing_cost=1e-4,
                                          coordination_alpha=0.02),
                    selectivity=2.0),
            sink("snk"),
        ],
        [Edge("src", "op"), Edge("op", "snk")],
    )


def run_loop(tick, seed=1, jitter=0.0, duration=300.0):
    graph = pipeline()
    sim = Simulator(
        PhysicalPlan(graph, {"op": 1}),
        FlinkRuntime(),
        EngineConfig(
            tick=tick, track_record_latency=False,
            cost_jitter=jitter, seed=seed,
        ),
    )
    controller = DS2Controller(
        DS2Policy(graph),
        ManagerConfig(warmup_intervals=1, activation_intervals=1),
    )
    loop = ControlLoop(sim, controller, policy_interval=10.0)
    result = loop.run(duration)
    return (
        [(e.time, e.applied["op"]) for e in result.events],
        sim.plan.parallelism_of("op"),
        sim.source_backlog("src"),
    )


class TestDeterminism:
    def test_identical_runs_produce_identical_trajectories(self):
        first = run_loop(tick=0.25, jitter=0.05, seed=9)
        second = run_loop(tick=0.25, jitter=0.05, seed=9)
        assert first == second

    def test_different_seed_changes_noisy_measurements(self):
        def measured_rate(seed):
            graph = pipeline()
            sim = Simulator(
                PhysicalPlan(graph, {"op": 1}),
                FlinkRuntime(),
                EngineConfig(
                    tick=0.25, track_record_latency=False,
                    cost_jitter=0.05, seed=seed,
                ),
            )
            sim.run_for(20.0)
            window = sim.collect_metrics()
            return window.aggregated_true_processing_rate("op")

        assert measured_rate(9) != measured_rate(10)


class TestTickInvariance:
    @pytest.mark.parametrize("tick", [0.1, 0.25, 0.5])
    def test_converged_configuration_is_tick_independent(self, tick):
        _events, final, _backlog = run_loop(tick=tick)
        # 20K rec/s over 1e-4 s/record with 8% instrumentation and
        # alpha=0.02: the optimum is 3 instances at any tick size.
        assert final == 3

    def test_steady_throughput_is_tick_independent(self):
        rates = []
        for tick in (0.1, 0.25, 0.5):
            graph = pipeline()
            sim = Simulator(
                PhysicalPlan(graph, {"op": 3}),
                FlinkRuntime(),
                EngineConfig(tick=tick, track_record_latency=False),
            )
            sim.run_for(30.0)
            window = sim.collect_metrics()
            rates.append(window.source_observed_rates["src"])
        assert max(rates) == pytest.approx(min(rates), rel=0.01)
