"""Unit tests for fair (water-filling) allocation."""

import math

import pytest

from repro.engine.allocation import fair_allocate, fair_allocate_batch
from repro.engine.npcompat import HAVE_NUMPY, np
from repro.errors import EngineError

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - optional dev dependency
    HAVE_HYPOTHESIS = False


class TestFairAllocate:
    def test_everyone_satisfied_when_total_suffices(self):
        assert fair_allocate(100.0, [10.0, 20.0, 30.0]) == [
            10.0,
            20.0,
            30.0,
        ]

    def test_infinite_total(self):
        assert fair_allocate(math.inf, [5.0, 7.0]) == [5.0, 7.0]

    def test_equal_split_under_contention(self):
        allocation = fair_allocate(30.0, [100.0, 100.0, 100.0])
        assert allocation == pytest.approx([10.0, 10.0, 10.0])

    def test_small_demand_releases_share(self):
        allocation = fair_allocate(30.0, [5.0, 100.0])
        assert allocation[0] == pytest.approx(5.0)
        assert allocation[1] == pytest.approx(25.0)

    def test_sum_never_exceeds_total(self):
        allocation = fair_allocate(17.0, [9.0, 9.0, 9.0])
        assert sum(allocation) == pytest.approx(17.0)

    def test_sum_never_exceeds_demand(self):
        allocation = fair_allocate(1000.0, [1.0, 2.0])
        assert sum(allocation) == pytest.approx(3.0)

    def test_no_allocation_exceeds_desire(self):
        allocation = fair_allocate(100.0, [5.0, 50.0, 200.0])
        for granted, desired in zip(allocation, [5.0, 50.0, 200.0]):
            assert granted <= desired + 1e-9

    def test_zero_and_negative_desires(self):
        allocation = fair_allocate(10.0, [0.0, -5.0, 20.0])
        assert allocation[0] == 0.0
        assert allocation[1] == 0.0
        assert allocation[2] == pytest.approx(10.0)

    def test_empty_desires(self):
        assert fair_allocate(10.0, []) == []

    def test_zero_total(self):
        assert fair_allocate(0.0, [5.0, 5.0]) == [0.0, 0.0]

    def test_negative_total_rejected(self):
        with pytest.raises(EngineError):
            fair_allocate(-1.0, [1.0])

    def test_three_tier_waterfill(self):
        # total 12 over demands (2, 5, 9): 2 is satisfied, remaining 10
        # splits as 5 each, so 5 is satisfied and 9 gets 5.
        allocation = fair_allocate(12.0, [2.0, 5.0, 9.0])
        assert allocation == pytest.approx([2.0, 5.0, 5.0])


@pytest.mark.skipif(not HAVE_NUMPY, reason="requires numpy")
class TestFairAllocateBatch:
    """The vectorized water-fill must be *bit-identical* to the scalar
    one — it backs the vector engine backend, whose decisions must
    match the object backend exactly."""

    CASES = [
        (100.0, [10.0, 20.0, 30.0]),
        (math.inf, [5.0, 7.0]),
        (30.0, [100.0, 100.0, 100.0]),
        (30.0, [5.0, 100.0]),
        (17.0, [9.0, 9.0, 9.0]),
        (10.0, [0.0, -5.0, 20.0]),
        (10.0, []),
        (0.0, [5.0, 5.0]),
        (12.0, [2.0, 5.0, 9.0]),
        # Float-residue shapes: near-equal demands around the share.
        (1.0, [1 / 3, 1 / 3, 1 / 3]),
        (0.1 + 0.2, [0.1, 0.2, 0.30000000000000004]),
    ]

    @pytest.mark.parametrize("total,desires", CASES)
    def test_matches_scalar_exactly(self, total, desires):
        batch = fair_allocate_batch(
            total, np.asarray(desires, dtype=np.float64)
        )
        assert batch.tolist() == fair_allocate(total, desires)

    def test_negative_total_rejected(self):
        with pytest.raises(EngineError):
            fair_allocate_batch(-1.0, np.asarray([1.0]))

    if HAVE_HYPOTHESIS:

        @given(
            total=st.one_of(
                st.floats(
                    min_value=0.0,
                    max_value=1e9,
                    allow_nan=False,
                ),
                st.just(math.inf),
            ),
            desires=st.lists(
                st.floats(
                    min_value=-1e6,
                    max_value=1e9,
                    allow_nan=False,
                ),
                max_size=40,
            ),
        )
        @settings(max_examples=200, deadline=None)
        def test_property_bit_identical(self, total, desires):
            batch = fair_allocate_batch(
                total, np.asarray(desires, dtype=np.float64)
            )
            assert batch.tolist() == fair_allocate(total, desires)
