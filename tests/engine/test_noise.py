"""Tests for cost-noise injection and its interaction with the
manager's noise guards (suppress_minor_change, activation)."""

import pytest

from repro.core.controller import ControlLoop
from repro.core.manager import DS2Controller, ManagerConfig
from repro.core.policy import DS2Policy
from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    map_operator,
    sink,
    source,
)
from repro.dataflow.physical import PhysicalPlan
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.errors import EngineError


def pipeline(rate=10_000.0, cost=1e-4):
    return LogicalGraph(
        [
            source("src", rate=RateSchedule.constant(rate)),
            map_operator("op", costs=CostModel(processing_cost=cost)),
            sink("snk"),
        ],
        [Edge("src", "op"), Edge("op", "snk")],
    )


class TestJitterMechanics:
    def test_invalid_jitter_rejected(self):
        with pytest.raises(EngineError):
            EngineConfig(cost_jitter=1.0)
        with pytest.raises(EngineError):
            EngineConfig(cost_jitter=-0.1)

    def test_deterministic_given_seed(self):
        def run(seed):
            sim = Simulator(
                PhysicalPlan(pipeline(), {"op": 2}),
                FlinkRuntime(),
                EngineConfig(
                    tick=0.1, track_record_latency=False,
                    cost_jitter=0.1, seed=seed,
                ),
            )
            sim.run_for(10.0)
            window = sim.collect_metrics()
            return window.aggregated_true_processing_rate("op")

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_jitter_spreads_measured_true_rates(self):
        sim = Simulator(
            PhysicalPlan(pipeline(), {"op": 2}),
            FlinkRuntime(),
            EngineConfig(
                tick=0.1, track_record_latency=False,
                cost_jitter=0.10, seed=3,
            ),
        )
        rates = []
        for _ in range(10):
            sim.run_for(2.0)
            window = sim.collect_metrics()
            rate = window.aggregated_true_processing_rate("op")
            if rate:
                rates.append(rate)
        spread = (max(rates) - min(rates)) / min(rates)
        assert 0.005 < spread < 0.25

    def test_zero_jitter_is_noise_free(self):
        sim = Simulator(
            PhysicalPlan(pipeline(), {"op": 2}),
            FlinkRuntime(),
            EngineConfig(tick=0.1, track_record_latency=False),
        )
        rates = []
        for _ in range(5):
            sim.run_for(2.0)
            window = sim.collect_metrics()
            rates.append(window.aggregated_true_processing_rate("op"))
        assert max(rates) == pytest.approx(min(rates), rel=1e-9)


class TestNoiseGuards:
    def run_loop(self, suppress, jitter=0.08, duration=600.0):
        # Instrumented capacity per instance ~9.26K/s; at 55K/s the
        # noise-free raw requirement is ~5.94 instances — right at the
        # ceil boundary, so cost noise flips the proposal between 6
        # and 7.
        graph = pipeline(rate=55_000.0)
        sim = Simulator(
            PhysicalPlan(graph, {"op": 6}),
            FlinkRuntime(),
            EngineConfig(
                tick=0.25, track_record_latency=False,
                cost_jitter=jitter, seed=11,
            ),
        )
        controller = DS2Controller(
            DS2Policy(graph),
            ManagerConfig(
                warmup_intervals=1,
                activation_intervals=1,
                suppress_minor_change=suppress,
            ),
        )
        loop = ControlLoop(sim, controller, policy_interval=10.0)
        result = loop.run(duration)
        return result.scaling_steps

    def test_minor_change_suppression_prevents_noise_churn(self):
        churning = self.run_loop(suppress=0)
        steady = self.run_loop(suppress=1)
        # Without the guard, noise flips the ceil and triggers actions;
        # with it, the configuration holds still.
        assert churning >= 1
        assert steady == 0
