"""Integration-level tests of the engine simulator.

These verify the physical behaviours DS2 depends on: exact useful-time
accounting, true rates that do not change under load (the paper's core
observation), backpressure that emerges from bounded buffers, record
conservation, rescaling with state-preserving outages, and the Timely
execution model.
"""

import math

import pytest

from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    flatmap,
    map_operator,
    sink,
    sliding_window,
    source,
)
from repro.dataflow.physical import Partitioner, PhysicalPlan
from repro.dataflow.state import SavepointModel
from repro.engine.runtimes import FlinkRuntime, HeronRuntime, TimelyRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.errors import EngineError, ReconfigurationError


def pipeline_graph(
    rate=1000.0, cost=1e-4, selectivity=1.0, alpha=0.0
):
    """source -> op -> sink with configurable cost/selectivity."""
    return LogicalGraph(
        [
            source("src", rate=RateSchedule.constant(rate)),
            flatmap(
                "op",
                costs=CostModel(
                    processing_cost=cost, coordination_alpha=alpha
                ),
                selectivity=selectivity,
            ),
            sink("snk"),
        ],
        [Edge("src", "op"), Edge("op", "snk")],
    )


def flink(plan, **config):
    config.setdefault("tick", 0.1)
    config.setdefault("track_record_latency", False)
    return Simulator(plan, FlinkRuntime(), EngineConfig(**config))


class TestSteadyState:
    def test_well_provisioned_pipeline_sustains_rate(self):
        graph = pipeline_graph(rate=1000.0, cost=1e-4)  # 1 inst = 10K/s
        plan = PhysicalPlan(graph, {"op": 1})
        sim = flink(plan)
        sim.run_for(20.0)
        window = sim.collect_metrics()
        assert window.source_observed_rates["src"] == pytest.approx(
            1000.0, rel=0.01
        )
        assert not sim.backpressured_operators()

    def test_true_rate_equals_capacity_when_underloaded(self):
        graph = pipeline_graph(rate=1000.0, cost=1e-4)
        plan = PhysicalPlan(graph, {"op": 1})
        sim = flink(plan, instrumentation_enabled=False)
        sim.run_for(20.0)
        window = sim.collect_metrics()
        # True rate = 1/cost = 10K/s even though only 1K/s flows — this
        # is exactly why DS2 can size operators without saturating them.
        assert window.aggregated_true_processing_rate(
            "op"
        ) == pytest.approx(10_000.0, rel=0.01)

    def test_true_rate_unchanged_under_backpressure(self):
        # Overload the operator 10x: observed rate collapses to
        # capacity but the true rate stays 1/cost.
        graph = pipeline_graph(rate=100_000.0, cost=1e-4)
        plan = PhysicalPlan(graph, {"op": 1})
        sim = flink(plan, instrumentation_enabled=False)
        sim.run_for(20.0)
        window = sim.collect_metrics()
        assert window.aggregated_true_processing_rate(
            "op"
        ) == pytest.approx(10_000.0, rel=0.01)
        assert window.observed_processing_rate("op") == pytest.approx(
            10_000.0, rel=0.05
        )
        assert "op" in sim.backpressured_operators()

    def test_observed_source_rate_suppressed_by_bottleneck(self):
        graph = pipeline_graph(rate=100_000.0, cost=1e-4)
        plan = PhysicalPlan(graph, {"op": 1})
        sim = flink(plan, instrumentation_enabled=False)
        sim.run_for(30.0)
        window = sim.collect_metrics()
        # The source can only push what the bottleneck frees: ~10K/s.
        assert window.source_observed_rates["src"] < 15_000.0
        assert sim.source_backlog("src") > 0

    def test_selectivity_propagates_downstream(self):
        graph = pipeline_graph(rate=1000.0, cost=1e-5, selectivity=20.0)
        plan = PhysicalPlan(graph, {"op": 1})
        sim = flink(plan, instrumentation_enabled=False)
        sim.run_for(20.0)
        window = sim.collect_metrics()
        assert window.selectivity("op") == pytest.approx(20.0)
        assert window.observed_processing_rate("snk") == pytest.approx(
            20_000.0, rel=0.05
        )

    def test_parallel_instances_share_load(self):
        graph = pipeline_graph(rate=10_000.0, cost=1e-4)
        plan = PhysicalPlan(graph, {"op": 2})
        sim = flink(plan, instrumentation_enabled=False)
        sim.run_for(20.0)
        window = sim.collect_metrics()
        ids = window.instances_of("op")
        rates = [
            window.instances[iid].observed_processing_rate for iid in ids
        ]
        assert rates[0] == pytest.approx(rates[1], rel=0.02)

    def test_instrumentation_overhead_inflates_cost(self):
        graph = pipeline_graph(rate=1000.0, cost=1e-4)
        plan = PhysicalPlan(graph, {"op": 1})
        sim = flink(plan, instrumentation_enabled=True)
        sim.run_for(20.0)
        window = sim.collect_metrics()
        # FlinkRuntime adds 8%: true rate = 10K / 1.08.
        assert window.aggregated_true_processing_rate(
            "op"
        ) == pytest.approx(10_000.0 / 1.08, rel=0.01)

    def test_coordination_alpha_reduces_per_instance_rate(self):
        graph = pipeline_graph(rate=1000.0, cost=1e-4, alpha=0.1)
        plan = PhysicalPlan(graph, {"op": 6})
        sim = flink(plan, instrumentation_enabled=False)
        sim.run_for(20.0)
        window = sim.collect_metrics()
        per_instance = (
            window.aggregated_true_processing_rate("op") / 6
        )
        assert per_instance == pytest.approx(10_000.0 / 1.5, rel=0.02)

    def test_useful_plus_waiting_equals_window(self):
        graph = pipeline_graph(rate=1000.0, cost=1e-4)
        plan = PhysicalPlan(graph, {"op": 2})
        sim = flink(plan)
        sim.run_for(10.0)
        window = sim.collect_metrics()
        for counters in window.instances.values():
            assert (
                counters.useful_time + counters.waiting_time
            ) == pytest.approx(counters.observed_time, rel=1e-6)


class TestConservation:
    def test_records_conserved_through_pipeline(self):
        graph = pipeline_graph(rate=1000.0, cost=1e-5, selectivity=2.0)
        plan = PhysicalPlan(graph, {"op": 3})
        sim = flink(plan, instrumentation_enabled=False)
        sim.run_for(30.0)
        window = sim.collect_metrics()
        pushed_by_op = sum(
            window.instances[iid].records_pushed
            for iid in window.instances_of("op")
        )
        consumed_by_sink = sum(
            window.instances[iid].records_pulled
            for iid in window.instances_of("snk")
        )
        queued_at_sink = sim.queue_length("snk")
        assert pushed_by_op == pytest.approx(
            consumed_by_sink + queued_at_sink, rel=1e-6
        )

    def test_invariant_checks_run_by_default(self):
        graph = pipeline_graph()
        plan = PhysicalPlan(graph, {"op": 1})
        sim = flink(plan, check_invariants=True)
        sim.run_for(5.0)  # would raise on violation


class TestSkew:
    def test_hot_instance_limits_throughput(self):
        graph = pipeline_graph(rate=15_000.0, cost=1e-4)
        # 2 instances can do 20K/s balanced, enough for 15K/s; but with
        # 80% skew the hot instance (10K/s capacity) sees 12K/s and
        # caps system throughput near 12.5K/s.
        plan = PhysicalPlan(
            graph,
            {"op": 2},
            partitioner=Partitioner({"op": 0.8}),
        )
        sim = flink(plan, instrumentation_enabled=False)
        sim.run_for(30.0)
        window = sim.collect_metrics()
        ids = window.instances_of("op")
        hot = window.instances[ids[0]].observed_processing_rate
        cold = window.instances[ids[1]].observed_processing_rate
        assert hot > cold * 2
        assert window.utilization_imbalance("op")[0] > 0.9

    def test_skew_does_not_change_true_rates(self):
        graph = pipeline_graph(rate=10_000.0, cost=1e-4)
        plan = PhysicalPlan(
            graph, {"op": 2}, partitioner=Partitioner({"op": 0.8})
        )
        sim = flink(plan, instrumentation_enabled=False)
        sim.run_for(30.0)
        window = sim.collect_metrics()
        # Both instances still have capacity 1/cost: DS2's averaging
        # yields the no-skew optimum (section 4.2.3).
        assert window.aggregated_true_processing_rate(
            "op"
        ) == pytest.approx(20_000.0, rel=0.02)


class TestRescale:
    def test_rescale_changes_plan_after_outage(self):
        graph = pipeline_graph(rate=5000.0, cost=1e-4)
        plan = PhysicalPlan(graph, {"op": 1})
        sim = flink(plan)
        sim.run_for(5.0)
        outage = sim.rescale({"op": 2})
        assert outage > 0
        assert sim.in_outage
        assert sim.plan.parallelism_of("op") == 1  # not yet deployed
        sim.run_for(outage + 1.0)
        assert not sim.in_outage
        assert sim.plan.parallelism_of("op") == 2
        assert sim.rescale_count == 1

    def test_noop_rescale_is_free(self):
        graph = pipeline_graph()
        plan = PhysicalPlan(graph, {"op": 2})
        sim = flink(plan)
        assert sim.rescale({"op": 2}) == 0.0
        assert not sim.in_outage

    def test_rescale_during_outage_rejected(self):
        graph = pipeline_graph(rate=5000.0, cost=1e-4)
        sim = flink(PhysicalPlan(graph, {"op": 1}))
        sim.run_for(1.0)
        sim.rescale({"op": 2})
        with pytest.raises(ReconfigurationError):
            sim.rescale({"op": 3})

    def test_queued_records_survive_redeploy(self):
        graph = pipeline_graph(rate=50_000.0, cost=1e-4)
        runtime = FlinkRuntime(savepoint=SavepointModel.instant())
        sim = Simulator(
            PhysicalPlan(graph, {"op": 1}),
            runtime,
            EngineConfig(tick=0.1, track_record_latency=False),
        )
        sim.run_for(10.0)  # builds a queue at the bottleneck
        queued_before = sim.queue_length("op")
        assert queued_before > 0
        sim.rescale({"op": 8})
        # Redeploy is instantaneous: records were redistributed across
        # the new instances with none lost.
        assert sim.plan.parallelism_of("op") == 8
        assert sim.queue_length("op") == pytest.approx(
            queued_before, rel=1e-6
        )

    def test_sources_accumulate_backlog_during_outage(self):
        graph = pipeline_graph(rate=1000.0, cost=1e-5)
        sim = flink(PhysicalPlan(graph, {"op": 1}))
        sim.run_for(2.0)
        before = sim.source_backlog("src")
        outage = sim.rescale({"op": 2})
        sim.run_for(outage)
        grown = sim.source_backlog("src") - before
        assert grown == pytest.approx(1000.0 * outage, rel=0.05)

    def test_instant_savepoint_deploys_immediately(self):
        graph = pipeline_graph()
        runtime = FlinkRuntime(savepoint=SavepointModel.instant())
        sim = Simulator(
            PhysicalPlan(graph, {"op": 1}),
            runtime,
            EngineConfig(tick=0.1, track_record_latency=False),
        )
        outage = sim.rescale({"op": 4})
        assert outage == pytest.approx(0.0, abs=1e-6)
        assert sim.plan.parallelism_of("op") == 4

    def test_metrics_window_flags_outage(self):
        graph = pipeline_graph(rate=5000.0, cost=1e-4)
        sim = flink(PhysicalPlan(graph, {"op": 1}))
        sim.run_for(1.0)
        sim.collect_metrics()
        sim.rescale({"op": 2})
        sim.run_for(5.0)
        window = sim.collect_metrics()
        assert window.outage_fraction > 0.5


class TestSourceCatchup:
    def test_catchup_drains_backlog_above_target(self):
        graph = pipeline_graph(rate=1000.0, cost=1e-5)  # 100K capacity
        sim = flink(
            PhysicalPlan(graph, {"op": 1}), source_catchup_factor=2.0
        )
        sim._source_backlog["src"] = 3000.0
        sim.run_for(2.0)
        window = sim.collect_metrics()
        # Source emits up to 2x target while backlog remains.
        assert window.source_observed_rates["src"] == pytest.approx(
            2000.0, rel=0.05
        )

    def test_backlog_eventually_drains(self):
        graph = pipeline_graph(rate=1000.0, cost=1e-5)
        sim = flink(
            PhysicalPlan(graph, {"op": 1}), source_catchup_factor=2.0
        )
        sim._source_backlog["src"] = 500.0
        sim.run_for(5.0)
        assert sim.source_backlog("src") == pytest.approx(0.0, abs=1.0)


class TestWindows:
    @staticmethod
    def window_graph(rate=10_000.0):
        return LogicalGraph(
            [
                source("src", rate=RateSchedule.constant(rate)),
                sliding_window(
                    "win",
                    length=2.0,
                    slide=1.0,
                    fire_selectivity=0.01,
                    assign_cost=1e-6,
                    fire_cost=1e-6,
                ),
                sink("snk"),
            ],
            [Edge("src", "win"), Edge("win", "snk")],
        )

    def test_window_emits_only_after_fire(self):
        graph = self.window_graph()
        sim = flink(PhysicalPlan(graph, {"win": 1}))
        sim.run_for(0.5)  # before the first slide boundary
        window = sim.collect_metrics()
        assert window.observed_output_rate("win") == 0.0

    def test_window_long_run_selectivity(self):
        graph = self.window_graph()
        sim = flink(PhysicalPlan(graph, {"win": 1}))
        sim.run_for(30.0)
        window = sim.collect_metrics()
        # replication 2 x fire_selectivity 0.01.
        assert window.selectivity("win") == pytest.approx(0.02, rel=0.1)

    def test_window_processing_rate_oscillates(self):
        graph = self.window_graph()
        sim = flink(PhysicalPlan(graph, {"win": 1}))
        sim.run_for(5.0)
        sim.collect_metrics()
        # Sample short windows: some contain a fire (low measured
        # processing rate due to fire work), some do not.
        rates = []
        for _ in range(10):
            sim.run_for(0.5)
            w = sim.collect_metrics()
            rate = w.aggregated_true_processing_rate("win")
            if rate is not None:
                rates.append(rate)
        assert max(rates) > min(rates) * 1.2


class TestTimelyModel:
    @staticmethod
    def timely_sim(workers, rate=10_000.0, cost=1e-4):
        graph = pipeline_graph(rate=rate, cost=cost)
        plan = PhysicalPlan(graph, {n: workers for n in graph.names})
        return Simulator(
            plan,
            TimelyRuntime(),
            EngineConfig(
                tick=0.1,
                track_record_latency=False,
                instrumentation_enabled=False,
            ),
        )

    def test_sources_never_blocked(self):
        sim = self.timely_sim(workers=1, rate=50_000.0)  # 5x overload
        sim.run_for(10.0)
        window = sim.collect_metrics()
        assert window.source_observed_rates["src"] == pytest.approx(
            50_000.0, rel=0.01
        )

    def test_queues_grow_when_underprovisioned(self):
        sim = self.timely_sim(workers=1, rate=50_000.0)
        sim.run_for(10.0)
        assert sim.total_queued_records() > 100_000

    def test_no_backpressure_signal(self):
        sim = self.timely_sim(workers=1, rate=50_000.0)
        sim.run_for(10.0)
        assert sim.backpressured_operators() == ()

    def test_enough_workers_keep_up(self):
        # 50K/s at 1e-4 s/record needs 5 worker-seconds/s of op time.
        sim = self.timely_sim(workers=6, rate=50_000.0)
        sim.run_for(10.0)
        sim.collect_metrics()
        sim.run_for(5.0)
        assert sim.total_queued_records() < 20_000

    def test_true_rates_on_shared_workers(self):
        sim = self.timely_sim(workers=2, rate=10_000.0)
        sim.run_for(10.0)
        window = sim.collect_metrics()
        # Per-instance true rate is 1/cost regardless of sharing.
        assert window.aggregated_true_processing_rate(
            "op"
        ) == pytest.approx(20_000.0, rel=0.02)


class TestEngineConfigValidation:
    def test_bad_tick(self):
        with pytest.raises(EngineError):
            EngineConfig(tick=0.0)

    def test_bad_catchup(self):
        with pytest.raises(EngineError):
            EngineConfig(source_catchup_factor=0.5)

    def test_bad_epoch(self):
        with pytest.raises(EngineError):
            EngineConfig(epoch_seconds=0.0)

    def test_run_backwards_rejected(self):
        graph = pipeline_graph()
        sim = flink(PhysicalPlan(graph, {"op": 1}))
        sim.run_for(1.0)
        with pytest.raises(EngineError):
            sim.run_until(0.5)

    def test_unknown_source_backlog_rejected(self):
        graph = pipeline_graph()
        sim = flink(PhysicalPlan(graph, {"op": 1}))
        with pytest.raises(EngineError):
            sim.source_backlog("ghost")

    def test_unknown_queue_length_rejected(self):
        graph = pipeline_graph()
        sim = flink(PhysicalPlan(graph, {"op": 1}))
        with pytest.raises(EngineError):
            sim.queue_length("ghost")


class TestHeronModel:
    def test_large_queues_delay_backpressure(self):
        graph = pipeline_graph(rate=20_000.0, cost=1e-4)  # 2x overload
        flink_sim = Simulator(
            PhysicalPlan(graph, {"op": 1}),
            FlinkRuntime(),
            EngineConfig(tick=0.1, track_record_latency=False),
        )
        heron_sim = Simulator(
            PhysicalPlan(graph, {"op": 1}),
            HeronRuntime(),
            EngineConfig(tick=0.1, track_record_latency=False),
        )
        flink_sim.run_for(10.0)
        heron_sim.run_for(10.0)
        # Flink's small buffers fill within seconds; Heron's 100 MiB
        # queue has not crossed its high-water mark yet.
        assert "op" in flink_sim.backpressured_operators()
        assert "op" not in heron_sim.backpressured_operators()
