"""Unit tests for the MetricsManager aggregation (section 4.1)."""

import pytest

from repro.dataflow.physical import InstanceId
from repro.engine.metrics_manager import MetricsManager
from repro.errors import MetricsError


@pytest.fixture
def manager():
    m = MetricsManager()
    m.register_instances([InstanceId("op", 0), InstanceId("op", 1)])
    return m


class TestRecording:
    def test_accumulates_between_collections(self, manager):
        iid = InstanceId("op", 0)
        manager.record(iid, pulled=10, pushed=5, useful=0.05, waiting=0.05)
        manager.record(iid, pulled=10, pushed=5, useful=0.05, waiting=0.05)
        manager.advance(0.1)
        manager.advance(0.1)
        window = manager.collect()
        counters = window.instances[iid]
        assert counters.records_pulled == 20.0
        assert counters.useful_time == pytest.approx(0.1)
        assert counters.observed_time == pytest.approx(0.2)

    def test_unregistered_instance_rejected(self, manager):
        with pytest.raises(MetricsError):
            manager.record(
                InstanceId("ghost", 0), pulled=1, pushed=1,
                useful=0.0, waiting=0.0,
            )

    def test_negative_counters_rejected(self, manager):
        with pytest.raises(MetricsError):
            manager.record(
                InstanceId("op", 0), pulled=-1, pushed=0,
                useful=0.0, waiting=0.0,
            )


class TestCollection:
    def test_collect_resets_counters(self, manager):
        iid = InstanceId("op", 0)
        manager.record(iid, pulled=10, pushed=10, useful=0.1, waiting=0.0)
        manager.advance(0.1)
        first = manager.collect()
        manager.advance(0.1)
        second = manager.collect()
        assert first.instances[iid].records_pulled == 10.0
        assert second.instances[iid].records_pulled == 0.0

    def test_window_boundaries_advance(self, manager):
        manager.advance(1.0)
        first = manager.collect()
        manager.advance(2.0)
        second = manager.collect()
        assert first.start == 0.0 and first.end == 1.0
        assert second.start == 1.0 and second.end == 3.0

    def test_outage_fraction(self, manager):
        manager.advance(1.0, outage=True)
        manager.advance(1.0, outage=False)
        window = manager.collect()
        assert window.outage_fraction == pytest.approx(0.5)

    def test_outage_fraction_clamped(self, manager):
        manager.advance(1.0, outage=True)
        window = manager.collect()
        assert window.outage_fraction == 1.0

    def test_useful_clamped_to_observed(self, manager):
        # Floating-point accumulation may nudge useful just past the
        # window; the collector clamps instead of raising.
        iid = InstanceId("op", 0)
        manager.record(iid, pulled=1, pushed=1, useful=0.1000001,
                       waiting=0.0)
        manager.advance(0.1)
        window = manager.collect()
        assert window.instances[iid].useful_time <= 0.1 + 1e-12

    def test_register_replaces_instances(self, manager):
        manager.register_instances([InstanceId("new", 0)])
        manager.advance(1.0)
        window = manager.collect()
        assert list(window.instances) == [InstanceId("new", 0)]

    def test_source_rates_and_health_passthrough(self, manager):
        manager.advance(1.0)
        window = manager.collect(source_observed_rates={"src": 123.0})
        assert window.source_observed_rates["src"] == 123.0

    def test_negative_advance_rejected(self, manager):
        with pytest.raises(MetricsError):
            manager.advance(-0.1)


class TestSuppression:
    def test_suppressing_unregistered_instance_rejected(self, manager):
        with pytest.raises(MetricsError):
            manager.set_suppressed([InstanceId("ghost", 0)])

    def test_completeness_tracks_suppression(self, manager):
        assert manager.completeness() == {"op": 1.0}
        manager.set_suppressed([InstanceId("op", 0)])
        assert manager.completeness() == {"op": 0.5}
        manager.set_suppressed([])
        assert manager.completeness() == {"op": 1.0}

    def test_suppressed_instance_omitted_from_window(self, manager):
        manager.set_suppressed([InstanceId("op", 0)])
        manager.advance(1.0)
        window = manager.collect()
        assert InstanceId("op", 0) not in window.instances
        assert InstanceId("op", 1) in window.instances
        assert window.completeness_of("op") == 0.5
        assert window.registered_parallelism_of("op") == 2

    def test_counters_held_through_suppression(self, manager):
        iid = InstanceId("op", 0)
        manager.set_suppressed([iid])
        manager.record(iid, pulled=10, pushed=10, useful=0.5, waiting=0.5)
        manager.advance(1.0)
        manager.collect()  # suppressed: counters survive the reset
        manager.set_suppressed([])
        manager.record(iid, pulled=10, pushed=10, useful=0.5, waiting=0.5)
        manager.advance(1.0)
        catchup = manager.collect().instances[iid]
        # The catch-up report spans both windows.
        assert catchup.records_pulled == 20.0
        assert catchup.observed_time == pytest.approx(2.0)

    def test_register_clears_suppression(self, manager):
        manager.set_suppressed([InstanceId("op", 0)])
        manager.register_instances(
            [InstanceId("op", 0), InstanceId("op", 1)]
        )
        assert manager.suppressed == set()


class TestTruncation:
    def test_midwindow_reregistration_truncates(self, manager):
        manager.advance(1.0)  # in-flight observed time
        manager.register_instances([InstanceId("op", 0)])
        manager.advance(1.0)
        window = manager.collect()
        assert window.truncated
        # The flag is per-window: the next one is clean again.
        manager.advance(1.0)
        assert not manager.collect().truncated

    def test_boundary_reregistration_is_clean(self, manager):
        manager.advance(1.0)
        manager.collect()
        manager.register_instances([InstanceId("op", 0)])
        manager.advance(1.0)
        assert not manager.collect().truncated


class TestRedeployEdgeCases:
    """Redeploys racing suppression and recovery (ISSUE 4 satellites)."""

    def test_midwindow_redeploy_with_suppressed_reporters(self, manager):
        dark = InstanceId("op", 0)
        manager.set_suppressed([dark])
        manager.record(dark, pulled=10, pushed=10, useful=0.5,
                       waiting=0.5)
        manager.advance(1.0)
        # Redeploy mid-window while one reporter is dark: the window
        # must come back truncated, and the dark instance's held
        # counters must not leak into the new deployment.
        replacement = [
            InstanceId("op", 0),
            InstanceId("op", 1),
            InstanceId("op", 2),
        ]
        manager.register_instances(replacement)
        assert manager.suppressed == set()
        assert manager.completeness() == {"op": 1.0}
        manager.advance(1.0)
        window = manager.collect()
        assert window.truncated
        assert set(window.instances) == set(replacement)
        assert window.instances[dark].records_pulled == 0.0
        # Re-applied suppression against the new set makes the next
        # (clean) window incomplete instead.
        manager.set_suppressed([InstanceId("op", 2)])
        manager.advance(1.0)
        window = manager.collect()
        assert not window.truncated
        assert window.completeness_of("op") == pytest.approx(2 / 3)

    def test_recovered_reporter_restores_completeness(self, manager):
        dark = InstanceId("op", 0)
        live = InstanceId("op", 1)
        manager.set_suppressed([dark])
        for _ in range(2):
            manager.record(dark, pulled=5, pushed=5, useful=0.2,
                           waiting=0.3)
            manager.record(live, pulled=8, pushed=8, useful=0.4,
                           waiting=0.1)
            manager.advance(1.0)
            window = manager.collect()
            assert window.completeness_of("op") == 0.5
            assert dark not in window.instances
        # Recovery: suppression lifts, the held counters flush into
        # the next window, and completeness returns to 1.0.
        manager.set_suppressed([])
        assert manager.completeness() == {"op": 1.0}
        manager.record(dark, pulled=5, pushed=5, useful=0.2,
                       waiting=0.3)
        manager.advance(1.0)
        window = manager.collect()
        assert window.completeness_of("op") == 1.0
        catchup = window.instances[dark]
        assert catchup.records_pulled == 15.0
        assert catchup.useful_time == pytest.approx(0.6)
        assert catchup.observed_time == pytest.approx(3.0)
        # The flush is one-shot: the following window is ordinary.
        manager.advance(1.0)
        assert manager.collect().instances[dark].records_pulled == 0.0
