"""Edge-case tests: redeploys with windows, Timely rescaling, rate
schedules mid-flight, and metrics across outages."""

import pytest

from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    map_operator,
    session_window,
    sink,
    sliding_window,
    source,
)
from repro.dataflow.physical import PhysicalPlan
from repro.dataflow.state import SavepointModel
from repro.engine.runtimes import FlinkRuntime, TimelyRuntime
from repro.engine.simulator import EngineConfig, Simulator


def window_pipeline(rate=10_000.0, kind="sliding"):
    if kind == "sliding":
        win = sliding_window(
            "win", length=4.0, slide=1.0, fire_selectivity=0.01,
            assign_cost=1e-6, fire_cost=1e-6,
        )
    else:
        win = session_window(
            "win", length=4.0, gap=1.0, fire_selectivity=0.01,
            assign_cost=1e-6, fire_cost=1e-6,
        )
    return LogicalGraph(
        [
            source("src", rate=RateSchedule.constant(rate)),
            win,
            sink("snk"),
        ],
        [Edge("src", "win"), Edge("win", "snk")],
    )


class TestWindowAcrossRedeploy:
    def test_window_buffers_survive_rescale(self):
        graph = window_pipeline()
        runtime = FlinkRuntime(savepoint=SavepointModel.instant())
        sim = Simulator(
            PhysicalPlan(graph, {"win": 1}),
            runtime,
            EngineConfig(tick=0.1, track_record_latency=False),
        )
        sim.run_for(0.5)  # buffered records, no fire yet
        buffered_before = sum(
            inst.window.buffered for inst in sim._instances["win"]
        )
        assert buffered_before > 0
        sim.rescale({"win": 3})
        buffered_after = sum(
            inst.window.buffered for inst in sim._instances["win"]
        )
        assert buffered_after == pytest.approx(
            buffered_before, rel=1e-6
        )

    def test_fire_clock_realigned_after_redeploy(self):
        graph = window_pipeline()
        runtime = FlinkRuntime(savepoint=SavepointModel.instant())
        sim = Simulator(
            PhysicalPlan(graph, {"win": 1}),
            runtime,
            EngineConfig(tick=0.1, track_record_latency=False),
        )
        sim.run_for(2.55)
        sim.rescale({"win": 2})
        for inst in sim._instances["win"]:
            # Next fire is the next slide boundary after the redeploy.
            assert inst.window.next_fire == pytest.approx(3.0)

    def test_session_window_keeps_flowing_after_rescale(self):
        graph = window_pipeline(kind="session")
        runtime = FlinkRuntime(savepoint=SavepointModel.instant())
        sim = Simulator(
            PhysicalPlan(graph, {"win": 1}),
            runtime,
            EngineConfig(tick=0.1, track_record_latency=False),
        )
        sim.run_for(10.0)
        sim.collect_metrics()
        sim.rescale({"win": 2})
        sim.run_for(10.0)
        window = sim.collect_metrics()
        assert window.observed_output_rate("win") > 0


class TestTimelyRescale:
    def test_global_rescale_changes_all_operators(self):
        graph = LogicalGraph(
            [
                source("src", rate=RateSchedule.constant(10_000.0)),
                map_operator("m", costs=CostModel(processing_cost=1e-4)),
                sink("snk"),
            ],
            [Edge("src", "m"), Edge("m", "snk")],
        )
        sim = Simulator(
            PhysicalPlan(graph, {name: 2 for name in graph.names}),
            TimelyRuntime(),
            EngineConfig(tick=0.1, track_record_latency=False),
        )
        sim.run_for(5.0)
        outage = sim.rescale({name: 4 for name in graph.names})
        sim.run_for(outage + 1.0)
        assert set(sim.plan.parallelism.values()) == {4}
        # The new deployment still runs (budgets are per worker).
        sim.collect_metrics()
        sim.run_for(5.0)
        window = sim.collect_metrics()
        assert window.observed_processing_rate("m") > 0

    def test_queued_records_survive_timely_rescale(self):
        graph = LogicalGraph(
            [
                source("src", rate=RateSchedule.constant(50_000.0)),
                map_operator("m", costs=CostModel(processing_cost=1e-4)),
                sink("snk"),
            ],
            [Edge("src", "m"), Edge("m", "snk")],
        )
        sim = Simulator(
            PhysicalPlan(graph, {name: 1 for name in graph.names}),
            TimelyRuntime(savepoint=SavepointModel.instant()),
            EngineConfig(tick=0.1, track_record_latency=False),
        )
        sim.run_for(5.0)  # under-provisioned: queue grows
        queued = sim.queue_length("m")
        assert queued > 0
        sim.rescale({name: 8 for name in graph.names})
        assert sim.queue_length("m") == pytest.approx(queued, rel=1e-6)


class TestRateScheduleMidFlight:
    def test_source_follows_schedule(self):
        graph = LogicalGraph(
            [
                source(
                    "src",
                    rate=RateSchedule.phases([(0.0, 1000.0),
                                              (5.0, 200.0)]),
                ),
                map_operator("m", costs=CostModel(processing_cost=1e-5)),
                sink("snk"),
            ],
            [Edge("src", "m"), Edge("m", "snk")],
        )
        sim = Simulator(
            PhysicalPlan(graph, {"m": 1}),
            FlinkRuntime(),
            EngineConfig(tick=0.1, track_record_latency=False),
        )
        sim.run_for(5.0)
        first = sim.collect_metrics()
        sim.run_for(5.0)
        second = sim.collect_metrics()
        assert first.source_observed_rates["src"] == pytest.approx(
            1000.0, rel=0.02
        )
        assert second.source_observed_rates["src"] == pytest.approx(
            200.0, rel=0.02
        )


class TestOutageMetrics:
    def test_no_useful_work_during_outage(self):
        graph = LogicalGraph(
            [
                source("src", rate=RateSchedule.constant(5000.0)),
                map_operator("m", costs=CostModel(processing_cost=1e-4)),
                sink("snk"),
            ],
            [Edge("src", "m"), Edge("m", "snk")],
        )
        sim = Simulator(
            PhysicalPlan(graph, {"m": 1}),
            FlinkRuntime(),
            EngineConfig(tick=0.1, track_record_latency=False),
        )
        sim.run_for(2.0)
        sim.collect_metrics()
        outage = sim.rescale({"m": 2})
        sim.run_for(min(outage - 1.0, 10.0))
        window = sim.collect_metrics()
        assert window.outage_fraction == 1.0
        for counters in window.instances.values():
            assert counters.useful_time == 0.0
            assert counters.records_pulled == 0.0

    def test_epoch_tracker_spans_outage(self):
        graph = LogicalGraph(
            [
                source("src", rate=RateSchedule.constant(5000.0)),
                map_operator("m", costs=CostModel(processing_cost=1e-5)),
                sink("snk"),
            ],
            [Edge("src", "m"), Edge("m", "snk")],
        )
        sim = Simulator(
            PhysicalPlan(graph, {"m": 1}),
            FlinkRuntime(savepoint=SavepointModel(
                base_seconds=3.0, snapshot_bandwidth=1e12,
                redeploy_seconds=0.0,
            )),
            EngineConfig(
                tick=0.1, track_record_latency=False, epoch_seconds=1.0
            ),
        )
        sim.run_for(3.0)
        sim.rescale({"m": 2})
        sim.run_for(10.0)
        dist = sim.epoch_latency.distribution
        # Epochs interrupted by the outage complete late but complete.
        assert sim.epoch_latency.pending_epochs <= 2
        assert dist.quantile(1.0) >= 2.0