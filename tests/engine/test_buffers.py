"""Unit tests for fluid queues."""

import math

import pytest

from repro.engine.buffers import Queue
from repro.errors import EngineError


class TestBoundedQueue:
    def test_push_within_capacity(self):
        queue = Queue(capacity=100.0)
        assert queue.push(60.0) == 60.0
        assert queue.length == 60.0
        assert queue.free_space == pytest.approx(40.0)

    def test_push_clipped_at_capacity(self):
        queue = Queue(capacity=100.0)
        accepted = queue.push(150.0)
        assert accepted == 100.0
        assert queue.length == 100.0
        assert queue.free_space == 0.0

    def test_fill_fraction(self):
        queue = Queue(capacity=200.0)
        queue.push(50.0)
        assert queue.fill_fraction == pytest.approx(0.25)

    def test_pop_limited_by_content(self):
        queue = Queue(capacity=100.0)
        queue.push(30.0)
        assert queue.pop(50.0) == 30.0
        assert queue.length == 0.0

    def test_force_push_ignores_capacity(self):
        queue = Queue(capacity=10.0)
        queue.force_push(25.0)
        assert queue.length == 25.0
        assert queue.free_space == 0.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(EngineError):
            Queue(capacity=0.0)

    def test_bounded_flag(self):
        assert Queue(capacity=1.0).bounded
        assert not Queue().bounded


class TestUnboundedQueue:
    def test_never_rejects(self):
        queue = Queue()
        assert queue.push(1e12) == 1e12
        assert queue.free_space == math.inf
        assert queue.fill_fraction == 0.0


class TestConservation:
    def test_pushed_minus_popped_equals_length(self):
        queue = Queue(capacity=100.0)
        queue.push(80.0)
        queue.pop(30.0)
        queue.push(40.0)
        queue.check_conservation()
        assert queue.total_pushed - queue.total_popped == pytest.approx(
            queue.length
        )

    def test_drain_empties(self):
        queue = Queue()
        queue.push(42.0)
        assert queue.drain() == 42.0
        assert queue.length == 0.0
        queue.check_conservation()

    def test_negative_operations_rejected(self):
        queue = Queue()
        with pytest.raises(EngineError):
            queue.push(-1.0)
        with pytest.raises(EngineError):
            queue.pop(-1.0)

    def test_repr(self):
        assert "inf" in repr(Queue())
        assert "10" in repr(Queue(capacity=10.0))
