"""Unit tests for latency distributions and trackers."""

import pytest

from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    flatmap,
    map_operator,
    session_window,
    sink,
    source,
    tumbling_window,
)
from repro.engine.latency import (
    EpochLatencyTracker,
    LatencyDistribution,
    RecordLatencyTracker,
    _residence_lag,
)
from repro.errors import EngineError


@pytest.fixture
def chain():
    return LogicalGraph(
        [
            source("src", rate=RateSchedule.constant(100.0)),
            map_operator("m", costs=CostModel(processing_cost=1e-3)),
            sink("snk"),
        ],
        [Edge("src", "m"), Edge("m", "snk")],
    )


class TestLatencyDistribution:
    def test_quantiles(self):
        dist = LatencyDistribution()
        for value in (1.0, 2.0, 3.0, 4.0):
            dist.add(value)
        assert dist.quantile(0.5) == 2.0
        assert dist.quantile(1.0) == 4.0
        assert dist.median() == 2.0

    def test_weighted_quantiles(self):
        dist = LatencyDistribution()
        dist.add(1.0, weight=99.0)
        dist.add(100.0, weight=1.0)
        assert dist.median() == 1.0
        assert dist.quantile(0.999) == 100.0

    def test_mean(self):
        dist = LatencyDistribution()
        dist.add(1.0, weight=1.0)
        dist.add(3.0, weight=3.0)
        assert dist.mean() == pytest.approx(2.5)

    def test_fraction_above(self):
        dist = LatencyDistribution()
        dist.add(0.5, weight=2.0)
        dist.add(1.5, weight=2.0)
        assert dist.fraction_above(1.0) == pytest.approx(0.5)
        assert dist.fraction_above(10.0) == 0.0

    def test_cdf_points_monotone(self):
        dist = LatencyDistribution()
        for value in range(100):
            dist.add(float(value))
        points = dist.cdf_points(points=10)
        latencies = [p[0] for p in points]
        fractions = [p[1] for p in points]
        assert latencies == sorted(latencies)
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_zero_weight_ignored(self):
        dist = LatencyDistribution()
        dist.add(1.0, weight=0.0)
        assert len(dist) == 0

    def test_empty_distribution_raises(self):
        with pytest.raises(EngineError):
            LatencyDistribution().median()
        with pytest.raises(EngineError):
            LatencyDistribution().mean()

    def test_negative_latency_rejected(self):
        with pytest.raises(EngineError):
            LatencyDistribution().add(-1.0)

    def test_invalid_quantile_rejected(self):
        dist = LatencyDistribution()
        dist.add(1.0)
        with pytest.raises(EngineError):
            dist.quantile(1.5)


class TestRecordLatencyTracker:
    def test_sums_delays_along_path(self, chain):
        tracker = RecordLatencyTracker(chain, pipeline_hop_delay=0.05)
        tracker.observe_tick(
            operator_delays={"src": 0.0, "m": 0.2, "snk": 0.1},
            sink_consumed={"snk": 10.0},
        )
        # src(0) -> m(+0.2 +hop) -> snk(+0.1 +hop) = 0.4.
        assert tracker.distribution.median() == pytest.approx(0.4)

    def test_takes_worst_upstream_path(self):
        graph = LogicalGraph(
            [
                source("src", rate=RateSchedule.constant(1.0)),
                map_operator("fast", costs=CostModel(processing_cost=1e-6)),
                map_operator("slow", costs=CostModel(processing_cost=1e-6)),
                flatmap("merge", costs=CostModel(processing_cost=1e-6),
                        selectivity=1.0),
                sink("snk"),
            ],
            [
                Edge("src", "fast"),
                Edge("src", "slow"),
                Edge("fast", "merge"),
                Edge("slow", "merge"),
                Edge("merge", "snk"),
            ],
        )
        tracker = RecordLatencyTracker(graph, pipeline_hop_delay=0.0)
        tracker.observe_tick(
            operator_delays={"fast": 0.1, "slow": 5.0},
            sink_consumed={"snk": 1.0},
        )
        assert tracker.distribution.median() == pytest.approx(5.0)

    def test_no_samples_without_sink_consumption(self, chain):
        tracker = RecordLatencyTracker(chain, pipeline_hop_delay=0.0)
        tracker.observe_tick(
            operator_delays={"m": 1.0}, sink_consumed={"snk": 0.0}
        )
        assert len(tracker.distribution) == 0


class TestEpochLatencyTracker:
    def test_epoch_completes_when_sink_catches_up(self, chain):
        tracker = EpochLatencyTracker(chain, epoch_seconds=1.0)
        # 100 rec/s source; selectivity 1 through the map.
        now = 0.0
        for _ in range(10):
            now += 0.2
            tracker.observe_tick(
                now=now,
                source_emitted={"src": 20.0},
                sink_consumed={"snk": 20.0},
            )
        # Sink tracks the source exactly: epochs complete immediately.
        dist = tracker.distribution
        assert len(dist) >= 1
        assert dist.quantile(1.0) <= 0.2 + 1e-9

    def test_underprovisioned_epochs_grow(self, chain):
        tracker = EpochLatencyTracker(chain, epoch_seconds=1.0)
        now = 0.0
        # Sink only consumes half of what the source emits.
        for _ in range(100):
            now += 0.2
            tracker.observe_tick(
                now=now,
                source_emitted={"src": 20.0},
                sink_consumed={"snk": 10.0},
            )
        assert tracker.pending_epochs > 5

    def test_epoch_latency_measured_from_epoch_end(self, chain):
        tracker = EpochLatencyTracker(chain, epoch_seconds=1.0)
        # Emit 100 records in the first second, nothing afterwards;
        # the sink consumes them all between t=2 and t=3.
        tracker.observe_tick(
            now=1.0, source_emitted={"src": 100.0},
            sink_consumed={"snk": 0.0},
        )
        tracker.observe_tick(
            now=2.0, source_emitted={"src": 0.0},
            sink_consumed={"snk": 0.0},
        )
        tracker.observe_tick(
            now=3.0, source_emitted={"src": 0.0},
            sink_consumed={"snk": 100.0},
        )
        # Epoch 1 ended at t=1 and completed at t=3: latency 2 s.
        assert tracker.distribution.quantile(1.0) == pytest.approx(2.0)

    def test_invalid_epoch_seconds(self, chain):
        with pytest.raises(EngineError):
            EpochLatencyTracker(chain, epoch_seconds=0.0)


class TestResidenceLag:
    def test_no_windows_no_lag(self, chain):
        assert _residence_lag(chain, "snk") == 0.0

    def test_staggered_window_charges_full_interval(self):
        graph = LogicalGraph(
            [
                source("src", rate=RateSchedule.constant(1.0)),
                session_window("w", length=10.0, gap=2.0,
                               fire_selectivity=0.1),
                sink("snk"),
            ],
            [Edge("src", "w"), Edge("w", "snk")],
        )
        assert _residence_lag(graph, "snk") == pytest.approx(12.0)

    def test_synchronized_window_charges_quarter_interval(self):
        graph = LogicalGraph(
            [
                source("src", rate=RateSchedule.constant(1.0)),
                tumbling_window("w", length=8.0, fire_selectivity=0.1),
                sink("snk"),
            ],
            [Edge("src", "w"), Edge("w", "snk")],
        )
        assert _residence_lag(graph, "snk") == pytest.approx(2.0)
