"""`repro report` on sweep journals — and on everything older.

The journal header gained optional ``sweep``/``cells`` fields
(schema-versioned extension): a journal written by ``repro sweep run``
names its grid spec in every report rendering, while plain chaos
journals — including every journal written before sweeps existed —
keep their exact on-disk bytes and their "chaos run report" headline.
Both directions are regression-locked here; the committed
``tests/faults/golden_report.json`` byte-gate covers the old direction
end-to-end in ``scripts/check.sh``.
"""

import json
from pathlib import Path

from repro.experiments.chaos import resolve_workload
from repro.faults.campaigns import (
    PROFILES,
    CampaignGenerator,
    CampaignTargets,
    SerialExecutor,
)
from repro.faults.checkpoint import CheckpointJournal, JournalHeader
from repro.sweeps import SweepSpec, run_sweep, sweep_label
from repro.telemetry.reports import (
    build_report,
    render_report_json,
    render_report_markdown,
    render_report_text,
)
from repro.workloads.wordcount import heron_wordcount_graph

SWEEP_SPEC = SweepSpec.build(
    "header-probe",
    axes={
        "profile": ["smoke"],
        "rate": [1.0],
        "controller": ["ds2", "dhalion"],
        "runtime": ["heron"],
    },
    tick=2.0,
)


def _chaos_journal(path):
    """A journal exactly as pre-sweep `repro run chaos` wrote it."""
    runner = resolve_workload("wordcount").runner(2.0)
    generator = CampaignGenerator(
        PROFILES["smoke"],
        CampaignTargets.from_graph(heron_wordcount_graph()),
        seed=1,
    )
    specs = runner.cell_specs(generator, 1)
    header = JournalHeader(
        profile="smoke",
        workload="wordcount",
        seed=1,
        campaigns=1,
        controllers=tuple(
            sorted({spec.controller for spec in specs})
        ),
    )
    with CheckpointJournal.open(path, header) as journal:
        SerialExecutor(checkpoint=journal).run_cells(specs)
    return specs


def test_sweep_journal_report_names_the_spec(tmp_path):
    path = str(tmp_path / "sweep.jsonl")
    run_sweep(SWEEP_SPEC, checkpoint=path)
    label = sweep_label(SWEEP_SPEC)
    report = build_report(path)
    assert report.sweep == label

    text = render_report_text(report)
    assert text.startswith(
        f"sweep run report — spec={label} workload=wordcount seed=1"
    )
    assert "cells: 2/2 completed" in text

    payload = json.loads(render_report_json(report))
    assert payload["header"]["sweep"] == label
    assert payload["coverage"]["expected"] == 2

    markdown = render_report_markdown(report)
    assert "# Sweep run report" in markdown
    assert f"- **sweep**: `{label}`" in markdown


def test_chaos_journal_report_unchanged(tmp_path):
    """Old direction: a plain chaos journal has no sweep key on disk,
    parses fine, and renders without any sweep line."""
    path = str(tmp_path / "chaos.jsonl")
    specs = _chaos_journal(path)

    header_line = Path(path).read_text().splitlines()[0]
    assert '"sweep"' not in header_line
    assert '"cells"' not in header_line

    report = build_report(path)
    assert report.sweep is None
    # Without the cells field, expected coverage still factors as
    # campaigns x controllers.
    assert report.cells_expected == len(specs)

    text = render_report_text(report)
    assert text.startswith("chaos run report — profile=smoke")
    assert "sweep" not in text

    payload = json.loads(render_report_json(report))
    assert "sweep" not in payload["header"]

    markdown = render_report_markdown(report)
    assert "# Chaos run report" in markdown
    assert "sweep" not in markdown
