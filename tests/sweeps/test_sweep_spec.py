"""Property-based and unit tests of sweep-spec expansion.

The spec's contract: expansion is a pure function of the *set* of axis
values (declaration order of axes and of values is irrelevant), cell
fingerprints are unique across the grid, explicit cells always lie in
the cartesian closure of their own coordinates, and every invalid
input is rejected with a :class:`~repro.errors.SweepError` naming the
offending axis — before any cell runs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SweepError
from repro.faults.checkpoint import cell_fingerprint
from repro.sweeps import (
    CellCoordinate,
    SweepSpec,
    compile_grid,
    expand_cells,
    spec_fingerprint,
    sweep_label,
)
from repro.sweeps.spec import (
    AXIS_ORDER,
    SWEEP_BACKENDS,
    SWEEP_CONTROLLERS,
    SWEEP_RUNTIMES,
)

# -- strategies --------------------------------------------------------

profiles = st.lists(
    st.sampled_from(["smoke", "mixed", "crashes", "telemetry"]),
    min_size=1, max_size=3,
)
rates = st.lists(
    st.sampled_from([0.5, 0.75, 1.0, 1.25, 2.0]),
    min_size=1, max_size=3,
)
burstiness = st.lists(
    st.sampled_from([None, 1.0, 2.0, 4.0]), min_size=1, max_size=3
)
# 'timely' is excluded from the cartesian runtime axis whenever
# dhalion is present, so draw controllers and runtimes jointly.
controller_runtime = st.one_of(
    st.tuples(
        st.lists(
            st.sampled_from(list(SWEEP_CONTROLLERS)),
            min_size=1, max_size=3,
        ),
        st.lists(
            st.sampled_from(["heron", "flink"]),
            min_size=1, max_size=2,
        ),
    ),
    st.tuples(
        st.lists(
            st.sampled_from(["ds2", "ds2-legacy"]),
            min_size=1, max_size=2,
        ),
        st.lists(
            st.sampled_from(list(SWEEP_RUNTIMES)),
            min_size=1, max_size=3,
        ),
    ),
)
backends = st.lists(
    st.sampled_from(list(SWEEP_BACKENDS)), min_size=1, max_size=3
)


@st.composite
def sweep_axes(draw):
    ctrl, runt = draw(controller_runtime)
    return {
        "profile": draw(profiles),
        "rate": draw(rates),
        "burstiness": draw(burstiness),
        "controller": ctrl,
        "runtime": runt,
        "backend": draw(backends),
    }


def _build(axes, **kwargs):
    return SweepSpec.build("prop-grid", axes=axes, **kwargs)


# -- determinism properties --------------------------------------------

@settings(max_examples=40, deadline=None)
@given(axes=sweep_axes(), order_seed=st.randoms(use_true_random=False))
def test_expansion_ignores_declaration_order(axes, order_seed):
    """Shuffling axis declaration order AND value order inside each
    axis yields the identical cell sequence and fingerprint."""
    reference = _build(axes)
    shuffled_axes = {}
    names = list(axes)
    order_seed.shuffle(names)
    for name in names:
        values = list(axes[name])
        order_seed.shuffle(values)
        shuffled_axes[name] = values
    shuffled = _build(shuffled_axes)
    assert shuffled == reference
    assert expand_cells(shuffled) == expand_cells(reference)
    assert spec_fingerprint(shuffled) == spec_fingerprint(reference)


@settings(max_examples=40, deadline=None)
@given(axes=sweep_axes())
def test_duplicate_values_collapse(axes):
    """Repeating axis values changes nothing: the canonical spec
    deduplicates before expansion."""
    doubled = {name: list(values) * 2 for name, values in axes.items()}
    assert _build(doubled) == _build(axes)


@settings(max_examples=40, deadline=None)
@given(axes=sweep_axes())
def test_cells_cover_exactly_the_cartesian_product(axes):
    """Cartesian expansion covers every coordinate exactly once, in
    scenario-major AXIS_ORDER with the controller minor."""
    spec = _build(axes)
    cells = expand_cells(spec)
    expected = (
        len(spec.profiles) * len(spec.rates) * len(spec.burstiness)
        * len(spec.runtimes) * len(spec.backends)
        * len(spec.controllers)
    )
    assert len(cells) == expected
    coords = [
        (c.profile, c.rate, c.burstiness, c.controller, c.runtime,
         c.backend)
        for c in cells
    ]
    assert len(set(coords)) == len(coords)
    assert [c.index for c in cells] == list(range(len(cells)))
    # Controller is the fastest-varying axis within a scenario.
    scenarios = [c.scenario for c in cells]
    assert scenarios == sorted(scenarios)


@settings(max_examples=20, deadline=None)
@given(
    axes=sweep_axes(),
    campaigns=st.integers(min_value=1, max_value=3),
)
def test_compiled_cell_fingerprints_are_unique(axes, campaigns):
    """Every compiled executor cell has a distinct fingerprint — the
    checkpoint journal can never conflate two grid cells."""
    grid = compile_grid(_build(axes, campaigns=campaigns))
    prints = [cell_fingerprint(spec) for spec in grid.specs]
    assert len(set(prints)) == len(prints)
    keys = [spec.key for spec in grid.specs]
    assert len(set(keys)) == len(keys)


@settings(max_examples=40, deadline=None)
@given(axes=sweep_axes(), pick=st.data())
def test_explicit_cells_subset_of_own_cartesian_closure(axes, pick):
    """An explicit cell drawn from the grid's own axes is recognized
    as a duplicate: expansion with it equals expansion without."""
    spec = _build(axes)
    cells = expand_cells(spec)
    chosen = pick.draw(st.sampled_from(list(cells)))
    with_cell = _build(
        axes,
        cells=[
            {
                "profile": chosen.profile,
                "rate": chosen.rate,
                "burstiness": chosen.burstiness,
                "controller": chosen.controller,
                "runtime": chosen.runtime,
                "backend": chosen.backend,
            }
        ],
    )
    assert expand_cells(with_cell) == cells


def test_explicit_cell_outside_grid_appends_after_cartesian():
    spec = SweepSpec.build(
        "g",
        axes={"controller": ["ds2"], "runtime": ["heron"]},
        cells=[
            {
                "profile": "smoke",
                "rate": 1.0,
                "controller": "ds2",
                "runtime": "timely",
            }
        ],
    )
    cells = expand_cells(spec)
    assert [c.explicit for c in cells] == [False, True]
    assert cells[-1].runtime == "timely"
    # The explicit cell is a new scenario (fresh ordinal).
    assert cells[-1].scenario == 1


def test_explicit_cell_on_existing_scenario_shares_ordinal():
    """An explicit cell landing on a cartesian scenario reuses its
    ordinal, so margin pairs keep shared fault schedules."""
    spec = SweepSpec.build(
        "g",
        axes={"controller": ["ds2"], "runtime": ["heron"]},
        cells=[
            {
                "profile": "smoke",
                "rate": 1.0,
                "controller": "dhalion",
                "runtime": "heron",
            }
        ],
    )
    cells = expand_cells(spec)
    assert len(cells) == 2
    assert cells[0].scenario == cells[1].scenario == 0
    grid = compile_grid(spec)
    ds2, dhalion = grid.specs
    assert ds2.schedule == dhalion.schedule


# -- named-axis validation ---------------------------------------------

@pytest.mark.parametrize(
    "axes, named",
    [
        ({"flavour": ["heron"]}, "flavour"),
        ({"profile": ["nope"]}, "profile"),
        ({"rate": [0.0]}, "rate"),
        ({"rate": [float("nan")]}, "rate"),
        ({"rate": ["fast"]}, "rate"),
        ({"burstiness": [0.5]}, "burstiness"),
        ({"controller": ["pid"]}, "controller"),
        ({"runtime": ["spark"]}, "runtime"),
        ({"backend": ["gpu"]}, "backend"),
        ({"rate": []}, "rate"),
        ({"controller": "ds2"}, "controller"),
    ],
)
def test_invalid_axes_rejected_with_named_axis(axes, named):
    with pytest.raises(SweepError, match=named):
        SweepSpec.build("bad", axes=axes)


@pytest.mark.parametrize(
    "cell, message",
    [
        ({"profile": "smoke", "rate": 1.0}, "missing axis"),
        (
            {
                "profile": "smoke",
                "rate": 1.0,
                "controller": "ds2",
                "runtime": "spark",
            },
            "runtime",
        ),
        (
            {
                "profile": "smoke",
                "rate": 1.0,
                "controller": "ds2",
                "runtime": "heron",
                "tick": 2.0,
            },
            "unknown axis",
        ),
    ],
)
def test_invalid_explicit_cells_rejected(cell, message):
    with pytest.raises(SweepError, match=message):
        SweepSpec.build("bad", cells=[cell])


def test_dhalion_timely_rejected_cartesian_and_explicit():
    with pytest.raises(SweepError, match="dhalion"):
        SweepSpec.build(
            "bad",
            axes={
                "controller": ["dhalion"],
                "runtime": ["timely"],
            },
        )
    with pytest.raises(SweepError, match="dhalion"):
        CellCoordinate(
            profile="smoke",
            rate=1.0,
            burstiness=None,
            controller="dhalion",
            runtime="timely",
            backend="default",
        )


def test_axis_order_is_the_documented_contract():
    assert AXIS_ORDER == (
        "profile",
        "rate",
        "burstiness",
        "controller",
        "runtime",
        "backend",
    )


def test_fingerprint_distinguishes_settings():
    base = SweepSpec.build("g", axes={"rate": [1.0]})
    assert spec_fingerprint(base) != spec_fingerprint(
        SweepSpec.build("g", axes={"rate": [1.25]})
    )
    assert spec_fingerprint(base) != spec_fingerprint(
        SweepSpec.build("g", axes={"rate": [1.0]}, seed=2)
    )
    assert spec_fingerprint(base) != spec_fingerprint(
        SweepSpec.build("g", axes={"rate": [1.0]}, tick=2.0)
    )
    assert sweep_label(base) == (
        f"g@{spec_fingerprint(base)}"
    )
