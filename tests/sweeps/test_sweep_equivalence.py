"""Sweep execution equivalence gates.

A sweep's output is a pure function of its spec: byte-identical across
job counts (serial vs a two-worker pool), across engine backends
(object vs the struct-of-arrays vector backend), and across
fresh-vs-SIGKILL-and-resumed runs. The CLI half of this file mirrors
the chaos kill-and-resume machinery in
``tests/faults/test_checkpoint.py`` — hard-kill ``repro sweep run``
mid-grid, resume from the journal, demand the same stdout — and is
also wired into ``scripts/check.sh`` as part of the sweep stage.
"""

import dataclasses
import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.engine.npcompat import HAVE_NUMPY
from repro.engine.vectorized import ENGINE_ENV
from repro.sweeps import (
    SweepSpec,
    build_sweep_report,
    load_spec,
    render_sweep_json,
    run_sweep,
    sweep_result_from_journal,
)

POOL_TIMEOUT = 180.0

SPEC_PATH = Path(__file__).resolve().parent / "smoke_grid.toml"
GOLDEN_PATH = Path(__file__).resolve().parent / "golden_sweep.json"


def _cards_as_dicts(result):
    return {
        index: dataclasses.asdict(card)
        for index, card in result.scorecards.items()
    }


def _report_json(result):
    return render_sweep_json(build_sweep_report(result))


# ----------------------------------------------------------------------
# In-process equivalence: jobs, backends
# ----------------------------------------------------------------------

def test_serial_vs_jobs2_byte_identical(tmp_path):
    """The smoke grid renders the identical sensitivity report whether
    run serially or merged from a two-worker pool with a journal."""
    spec = load_spec(str(SPEC_PATH))
    serial = run_sweep(spec)
    pooled = run_sweep(
        spec, jobs=2, checkpoint=str(tmp_path / "sweep.jsonl")
    )
    assert _cards_as_dicts(pooled) == _cards_as_dicts(serial)
    assert _report_json(pooled) == _report_json(serial)
    # ... and both match the committed golden artifact.
    assert _report_json(serial) == GOLDEN_PATH.read_text()


def test_journal_report_matches_live_run(tmp_path):
    """`repro sweep report` territory: a result rebuilt purely from
    the journal renders byte-identically to the live run's."""
    spec = load_spec(str(SPEC_PATH))
    path = str(tmp_path / "sweep.jsonl")
    live = run_sweep(spec, jobs=2, checkpoint=path)
    replayed = sweep_result_from_journal(spec, path)
    assert _cards_as_dicts(replayed) == _cards_as_dicts(live)
    assert _report_json(replayed) == _report_json(live)


def _two_cell_spec(backend):
    return SweepSpec.build(
        "backend-equivalence",
        axes={
            "profile": ["smoke"],
            "rate": [1.0],
            "controller": ["ds2", "dhalion"],
            "runtime": ["heron"],
            "backend": [backend],
        },
        tick=2.0,
    )


@pytest.mark.skipif(
    not HAVE_NUMPY, reason="vector backend requires numpy"
)
def test_object_vs_vector_backend_identical_scorecards():
    """Pinning the backend axis to 'object' vs 'vector' changes only
    the cell labels, never a single scorecard float."""
    object_run = run_sweep(_two_cell_spec("object"))
    vector_run = run_sweep(_two_cell_spec("vector"))
    assert _cards_as_dicts(object_run) == _cards_as_dicts(vector_run)


@pytest.mark.skipif(
    not HAVE_NUMPY, reason="vector backend requires numpy"
)
def test_default_backend_byte_identical_across_engine_env(monkeypatch):
    """With the backend axis left at 'default', the REPRO_ENGINE
    environment picks the engine — and must not change the report by
    a byte (the same spec fingerprint covers both)."""
    spec = load_spec(str(SPEC_PATH))
    monkeypatch.setenv(ENGINE_ENV, "object")
    object_report = _report_json(run_sweep(spec))
    monkeypatch.setenv(ENGINE_ENV, "vector")
    vector_report = _report_json(run_sweep(spec))
    assert vector_report == object_report


# ----------------------------------------------------------------------
# The check.sh gate: hard-kill `repro sweep run`, resume, demand identity
# ----------------------------------------------------------------------

CLI_ARGS = [
    "sweep", "run", "--spec", str(SPEC_PATH), "--format", "json",
]


def _cli_env():
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _run_cli(extra, timeout=POOL_TIMEOUT):
    return subprocess.run(
        [sys.executable, "-m", "repro"] + CLI_ARGS + extra,
        capture_output=True,
        text=True,
        env=_cli_env(),
        timeout=timeout,
    )


def _cell_count(path):
    if not os.path.exists(path):
        return 0
    count = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if '"record": "cell"' in line:
                count += 1
    return count


def _kill_mid_grid(checkpoint, jobs_args):
    """Start a checkpointed sweep, SIGKILL it once >= 2 cells landed."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro"]
        + CLI_ARGS
        + jobs_args
        + ["--checkpoint", checkpoint],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=_cli_env(),
    )
    deadline = time.monotonic() + POOL_TIMEOUT  # repro: allow[REPRO101] — test timeout guard
    while time.monotonic() < deadline:  # repro: allow[REPRO101]
        if _cell_count(checkpoint) >= 2:
            break
        if process.poll() is not None:
            break  # finished before we could kill it; still resumable
        time.sleep(0.01)
    if process.poll() is None:
        process.kill()
        process.wait(timeout=60)


@pytest.mark.parametrize("jobs_args", [[], ["--jobs", "2"]],
                         ids=["serial", "jobs2"])
def test_kill_and_resume_byte_identical(tmp_path, jobs_args):
    """A SIGKILLed sweep resumed from its journal prints the exact
    bytes of an uninterrupted run — which are the committed golden."""
    reference = _run_cli(
        jobs_args + ["--checkpoint", str(tmp_path / "ref.jsonl")]
    )
    assert reference.returncode == 0, reference.stderr
    assert reference.stdout == GOLDEN_PATH.read_text()
    killed = str(tmp_path / "killed.jsonl")
    _kill_mid_grid(killed, jobs_args)
    assert os.path.exists(killed)
    resumed = _run_cli(
        jobs_args + ["--checkpoint", killed, "--resume"]
    )
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout == reference.stdout
    payload = json.loads(resumed.stdout)
    assert payload["coverage"] == {"cells": 8, "completed": 8}


def test_sweep_report_cli_reproduces_run_output(tmp_path):
    """`repro sweep report` on a completed journal prints the same
    bytes `repro sweep run` did when it wrote that journal."""
    checkpoint = str(tmp_path / "sweep.jsonl")
    run = _run_cli(["--jobs", "2", "--checkpoint", checkpoint])
    assert run.returncode == 0, run.stderr
    report = subprocess.run(
        [sys.executable, "-m", "repro", "sweep", "report",
         "--spec", str(SPEC_PATH), "--checkpoint", checkpoint,
         "--format", "json"],
        capture_output=True,
        text=True,
        env=_cli_env(),
        timeout=POOL_TIMEOUT,
    )
    assert report.returncode == 0, report.stderr
    assert report.stdout == run.stdout
