"""Unit tests for the DS2 model (Eq. 7/8), hand-computed cases."""

import pytest

from repro.core.model import compute_optimal_parallelism
from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    filter_operator,
    flatmap,
    join,
    map_operator,
    sink,
    source,
)
from repro.errors import PolicyError
from tests.conftest import make_window


@pytest.fixture
def wordcount_like():
    """src -> splitter(sel 20) -> counter -> snk."""
    return LogicalGraph(
        [
            source("src", rate=RateSchedule.constant(1000.0)),
            flatmap("splitter", costs=CostModel(processing_cost=1e-4),
                    selectivity=20.0),
            map_operator("counter", costs=CostModel(processing_cost=1e-5)),
            sink("snk"),
        ],
        [
            Edge("src", "splitter"),
            Edge("splitter", "counter"),
            Edge("counter", "snk"),
        ],
    )


def window_for(graph, rates):
    """Build a 10 s window where each operator instance processed at
    its true rate for 1 s of useful time.

    ``rates`` maps operator -> (per_instance_true_rate, selectivity,
    parallelism).
    """
    counters = {}
    for op, (rate, selectivity, parallelism) in rates.items():
        for index in range(parallelism):
            counters[(op, index)] = (
                rate * 1.0,               # pulled over 1 s useful
                rate * selectivity * 1.0,  # pushed
                1.0,                      # useful time
            )
    return make_window(counters)


class TestEq7Eq8:
    def test_single_step_wordcount_sizing(self, wordcount_like):
        # splitter true rate 500/s/instance, counter 10K/s/instance.
        window = window_for(wordcount_like, {
            "splitter": (500.0, 20.0, 1),
            "counter": (10_000.0, 1.0, 1),
            "snk": (1e6, 0.0, 1),
        })
        result = compute_optimal_parallelism(
            wordcount_like, window, {"src": 1000.0}
        )
        # splitter: 1000 / 500 = 2 instances.
        assert result.estimates["splitter"].optimal_parallelism == 2
        # counter: ideal input = 1000*20 = 20K -> 2 instances.
        assert result.estimates["counter"].optimal_parallelism == 2
        # sink: 20K / 1e6 -> 1.
        assert result.estimates["snk"].optimal_parallelism == 1

    def test_lambda_star_uses_ideal_not_observed(self, wordcount_like):
        # The splitter only observed 100 rec/s (backpressured), but its
        # ideal output is selectivity x full source rate.
        window = window_for(wordcount_like, {
            "splitter": (500.0, 20.0, 1),
            "counter": (10_000.0, 1.0, 1),
            "snk": (1e6, 0.0, 1),
        })
        result = compute_optimal_parallelism(
            wordcount_like, window, {"src": 1000.0}
        )
        est = result.estimates["splitter"]
        assert est.ideal_output_rate == pytest.approx(20_000.0)
        assert result.estimates["counter"].target_rate == pytest.approx(
            20_000.0
        )

    def test_ceiling_applied(self, wordcount_like):
        window = window_for(wordcount_like, {
            "splitter": (300.0, 20.0, 1),   # 1000/300 = 3.33 -> 4
            "counter": (10_000.0, 1.0, 1),
            "snk": (1e6, 0.0, 1),
        })
        result = compute_optimal_parallelism(
            wordcount_like, window, {"src": 1000.0}
        )
        est = result.estimates["splitter"]
        assert est.optimal_parallelism_raw == pytest.approx(10.0 / 3.0)
        assert est.optimal_parallelism == 4

    def test_per_instance_rate_is_average(self, wordcount_like):
        # Two splitter instances with different measured rates: Eq. 7
        # divides the aggregate by p, i.e. uses the average.
        window = make_window({
            ("splitter", 0): (400.0, 8000.0, 1.0),
            ("splitter", 1): (600.0, 12000.0, 1.0),
            ("counter", 0): (10_000.0, 10_000.0, 1.0),
            ("snk", 0): (1e6, 0.0, 1.0),
        })
        result = compute_optimal_parallelism(
            wordcount_like, window, {"src": 1000.0}
        )
        # average 500/s -> 2 instances.
        assert result.estimates["splitter"].optimal_parallelism == 2

    def test_two_source_join_targets_sum(self):
        graph = LogicalGraph(
            [
                source("s1", rate=RateSchedule.constant(300.0)),
                source("s2", rate=RateSchedule.constant(700.0)),
                join("j", costs=CostModel(processing_cost=1e-3),
                     selectivity=0.5),
                sink("snk"),
            ],
            [Edge("s1", "j"), Edge("s2", "j"), Edge("j", "snk")],
        )
        window = window_for(graph, {
            "j": (250.0, 0.5, 1),
            "snk": (1e6, 0.0, 1),
        })
        result = compute_optimal_parallelism(
            graph, window, {"s1": 300.0, "s2": 700.0}
        )
        # Eq. 7 target = 300 + 700 = 1000 -> 1000/250 = 4 instances.
        est = result.estimates["j"]
        assert est.target_rate == pytest.approx(1000.0)
        assert est.optimal_parallelism == 4
        # Eq. 8: ideal output = 0.5 * 1000.
        assert est.ideal_output_rate == pytest.approx(500.0)

    def test_diamond_sums_branches(self, diamond_graph):
        window = window_for(diamond_graph, {
            "left": (1000.0, 1.0, 1),
            "right": (1000.0, 0.5, 1),
            "merge": (500.0, 1.0, 1),
            "snk": (1e6, 0.0, 1),
        })
        result = compute_optimal_parallelism(
            diamond_graph, window, {"src": 1000.0}
        )
        # merge receives 1000 (left) + 500 (right) = 1500 -> 3.
        assert result.estimates["merge"].target_rate == pytest.approx(
            1500.0
        )
        assert result.estimates["merge"].optimal_parallelism == 3

    def test_rate_compensation_scales_targets(self, wordcount_like):
        window = window_for(wordcount_like, {
            "splitter": (500.0, 20.0, 1),
            "counter": (10_000.0, 1.0, 1),
            "snk": (1e6, 0.0, 1),
        })
        plain = compute_optimal_parallelism(
            wordcount_like, window, {"src": 1000.0}
        )
        boosted = compute_optimal_parallelism(
            wordcount_like, window, {"src": 1000.0},
            rate_compensation=1.5,
        )
        assert boosted.estimates["splitter"].optimal_parallelism == 3
        assert plain.estimates["splitter"].optimal_parallelism == 2

    def test_invalid_compensation_rejected(self, wordcount_like):
        window = window_for(wordcount_like, {
            "splitter": (500.0, 20.0, 1),
            "counter": (10_000.0, 1.0, 1),
            "snk": (1e6, 0.0, 1),
        })
        with pytest.raises(PolicyError):
            compute_optimal_parallelism(
                wordcount_like, window, {"src": 1000.0},
                rate_compensation=0.5,
            )

    def test_missing_source_rate_rejected(self, wordcount_like):
        window = window_for(wordcount_like, {
            "splitter": (500.0, 20.0, 1),
            "counter": (10_000.0, 1.0, 1),
            "snk": (1e6, 0.0, 1),
        })
        with pytest.raises(PolicyError, match="missing source rates"):
            compute_optimal_parallelism(wordcount_like, window, {})


class TestUnknownOperators:
    def test_idle_operator_keeps_parallelism(self, wordcount_like):
        window = make_window({
            ("splitter", 0): (500.0, 10_000.0, 1.0),
            ("counter", 0): (0.0, 0.0, 0.0),   # never ran
            ("counter", 1): (0.0, 0.0, 0.0),
            ("snk", 0): (1e6, 0.0, 1.0),
        })
        result = compute_optimal_parallelism(
            wordcount_like, window, {"src": 1000.0}
        )
        assert "counter" in result.unknown_operators
        assert result.estimates["counter"].optimal_parallelism == 2

    def test_unknown_operator_uses_fallback_selectivity(
        self, wordcount_like
    ):
        window = make_window({
            ("splitter", 0): (0.0, 0.0, 0.0),
            ("counter", 0): (10_000.0, 10_000.0, 1.0),
            ("snk", 0): (1e6, 0.0, 1.0),
        })
        result = compute_optimal_parallelism(
            wordcount_like, window, {"src": 1000.0}
        )
        # splitter unknown: selectivity falls back to 1.0, so the
        # counter's target is the raw source rate.
        assert result.estimates["counter"].target_rate == pytest.approx(
            1000.0
        )


class TestGlobalParallelism:
    def test_sums_raw_requirements(self, wordcount_like):
        window = window_for(wordcount_like, {
            "splitter": (500.0, 20.0, 1),      # raw 2.0
            "counter": (10_000.0, 1.0, 1),     # raw 2.0
            "snk": (1e6, 0.0, 1),              # raw 0.02
        })
        result = compute_optimal_parallelism(
            wordcount_like, window, {"src": 1000.0}
        )
        # 2.0 + 2.0 + 0.02 -> ceil = 5 (section 4.3's summation).
        assert result.global_parallelism() == 5

    def test_minimum_one_worker(self, wordcount_like):
        window = window_for(wordcount_like, {
            "splitter": (1e9, 20.0, 1),
            "counter": (1e9, 1.0, 1),
            "snk": (1e9, 0.0, 1),
        })
        result = compute_optimal_parallelism(
            wordcount_like, window, {"src": 1.0}
        )
        assert result.global_parallelism() == 1
