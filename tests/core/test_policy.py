"""Unit tests for the DS2 policy layer (execution-model adaptation)."""

import pytest

from repro.core.policy import DS2Policy, ExecutionModel
from repro.errors import PolicyError
from tests.conftest import make_window


def standard_window():
    return make_window({
        ("worker", 0): (500.0, 500.0, 1.0),
        ("snk", 0): (1e6, 0.0, 1.0),
    })


class TestPerOperatorPolicy:
    def test_decision_covers_scalable_operators(self, chain_graph):
        policy = DS2Policy(chain_graph)
        decision = policy.decide(standard_window(), {"src": 1000.0})
        assert decision.parallelism == {"worker": 2}
        assert decision.actionable

    def test_custom_scalable_set(self, chain_graph):
        policy = DS2Policy(
            chain_graph, scalable_operators=("worker", "snk")
        )
        decision = policy.decide(standard_window(), {"src": 1000.0})
        assert set(decision.parallelism) == {"worker", "snk"}

    def test_unknown_scalable_operator_rejected(self, chain_graph):
        with pytest.raises(PolicyError):
            DS2Policy(chain_graph, scalable_operators=("ghost",))

    def test_not_actionable_with_idle_operator(self, chain_graph):
        window = make_window({
            ("worker", 0): (0.0, 0.0, 0.0),
            ("snk", 0): (1e6, 0.0, 1.0),
        })
        policy = DS2Policy(chain_graph)
        decision = policy.decide(window, {"src": 1000.0})
        assert not decision.actionable
        assert "worker" in decision.evaluation.unknown_operators


class TestGlobalPolicy:
    def test_all_operators_get_worker_count(self, chain_graph):
        policy = DS2Policy(chain_graph, ExecutionModel.GLOBAL)
        decision = policy.decide(standard_window(), {"src": 1000.0})
        values = set(decision.parallelism.values())
        assert len(values) == 1
        assert set(decision.parallelism) == set(chain_graph.names)

    def test_worker_count_is_summed_requirement(self, chain_graph):
        policy = DS2Policy(chain_graph, ExecutionModel.GLOBAL)
        decision = policy.decide(standard_window(), {"src": 1000.0})
        # worker raw 2.0 + sink raw 0.001 -> 3 workers.
        assert decision.parallelism["worker"] == 3
