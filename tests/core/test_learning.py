"""Unit tests for the non-linear scaling-curve learner (§3.4 ext.)."""

import pytest

from repro.core.learning import (
    LearningDS2Controller,
    ScalingCurve,
    ScalingCurveLearner,
)
from repro.core.manager import DS2Controller, ManagerConfig
from repro.core.policy import DS2Policy
from repro.errors import PolicyError


class TestScalingCurve:
    def test_rate_at(self):
        curve = ScalingCurve(base_rate=1000.0, alpha=0.1,
                             observations=4)
        assert curve.rate_at(1) == pytest.approx(1000.0)
        assert curve.rate_at(11) == pytest.approx(500.0)

    def test_parallelism_for_inverts_the_law(self):
        curve = ScalingCurve(base_rate=1000.0, alpha=0.05,
                             observations=4)
        for target in (500.0, 3000.0, 9000.0):
            p = curve.parallelism_for(target)
            assert p * curve.rate_at(p) >= target * (1 - 1e-9)
            if p > 1:
                assert (p - 1) * curve.rate_at(p - 1) < target

    def test_unreachable_target(self):
        # Aggregate throughput saturates at r1/alpha = 10_000.
        curve = ScalingCurve(base_rate=1000.0, alpha=0.1,
                             observations=4)
        assert curve.parallelism_for(20_000.0) is None

    def test_linear_special_case(self):
        curve = ScalingCurve(base_rate=100.0, alpha=0.0,
                             observations=2)
        assert curve.parallelism_for(1000.0) == 10

    def test_validation(self):
        curve = ScalingCurve(base_rate=1.0, alpha=0.0, observations=1)
        with pytest.raises(PolicyError):
            curve.rate_at(0)


class TestScalingCurveLearner:
    def test_needs_two_distinct_levels(self):
        learner = ScalingCurveLearner()
        learner.observe("op", 4, 500.0)
        learner.observe("op", 4, 510.0)
        assert learner.curve_for("op") is None
        learner.observe("op", 8, 400.0)
        assert learner.curve_for("op") is not None

    def test_recovers_synthetic_law(self):
        r1, alpha = 2000.0, 0.03
        learner = ScalingCurveLearner()
        for p in (2, 5, 9, 14, 20):
            learner.observe("op", p, r1 / (1 + alpha * (p - 1)))
        curve = learner.curve_for("op")
        assert curve.base_rate == pytest.approx(r1, rel=0.01)
        assert curve.alpha == pytest.approx(alpha, rel=0.05)

    def test_averages_noisy_repeats(self):
        learner = ScalingCurveLearner()
        for rate in (990.0, 1010.0):
            learner.observe("op", 1, rate)
        for rate in (495.0, 505.0):
            learner.observe("op", 11, rate)
        curve = learner.curve_for("op")
        assert curve.base_rate == pytest.approx(1000.0, rel=0.02)
        assert curve.alpha == pytest.approx(0.1, rel=0.05)
        assert curve.observations == 4

    def test_ignores_nonpositive_rates(self):
        learner = ScalingCurveLearner()
        learner.observe("op", 1, 0.0)
        assert learner.observations("op") == 0

    def test_invalid_inputs(self):
        with pytest.raises(PolicyError):
            ScalingCurveLearner(min_distinct_levels=1)
        with pytest.raises(PolicyError):
            ScalingCurveLearner().observe("op", 0, 1.0)


class TestLearningController:
    def test_reduces_steps_on_sublinear_workload(self):
        """End-to-end: on Q11 (the widest climb, 8 -> 28), learning
        the scaling curve saves at least one refinement step."""
        from repro.core.controller import ControlLoop
        from repro.dataflow.physical import PhysicalPlan
        from repro.engine.runtimes import FlinkRuntime
        from repro.engine.simulator import EngineConfig, Simulator
        from repro.workloads.nexmark import get_query

        def run(controller_class):
            query = get_query("Q11")
            graph = query.flink_graph()
            plan = PhysicalPlan(
                graph,
                query.initial_parallelism(graph, 8),
                max_parallelism=36,
            )
            sim = Simulator(
                plan, FlinkRuntime(),
                EngineConfig(tick=0.25, track_record_latency=False),
            )
            controller = controller_class(
                DS2Policy(graph),
                ManagerConfig(
                    warmup_intervals=1, activation_intervals=5
                ),
            )
            loop = ControlLoop(sim, controller, policy_interval=30.0)
            result = loop.run(1500.0)
            final = sim.plan.parallelism_of(query.main_operator)
            return result.scaling_steps, final

        baseline_steps, baseline_final = run(DS2Controller)
        learning_steps, learning_final = run(LearningDS2Controller)
        assert baseline_final == 28
        assert learning_final == 28
        assert learning_steps < baseline_steps
