"""Unit tests for offline initial provisioning."""

import pytest

from repro.core.offline import (
    microbenchmark_operator,
    offline_provisioning,
)
from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    flatmap,
    map_operator,
    sink,
    source,
)
from repro.engine.runtimes import FlinkRuntime
from repro.errors import PolicyError


@pytest.fixture
def graph():
    return LogicalGraph(
        [
            source("src", rate=RateSchedule.constant(5000.0)),
            flatmap("split", costs=CostModel(processing_cost=1e-3),
                    selectivity=4.0),
            map_operator("agg", costs=CostModel(processing_cost=1e-4)),
            sink("snk"),
        ],
        [Edge("src", "split"), Edge("split", "agg"),
         Edge("agg", "snk")],
    )


class TestMicrobenchmark:
    def test_measures_true_rate_without_saturation(self, graph):
        profile = microbenchmark_operator(
            graph.operator("split"),
            runtime=FlinkRuntime(),
            duration=20.0,
        )
        # Capacity 1/(1e-3 * 1.08 instrumentation) ~ 926 rec/s.
        assert profile.true_processing_rate == pytest.approx(
            1000.0 / 1.08, rel=0.02
        )
        assert profile.selectivity == pytest.approx(4.0, rel=0.02)

    def test_rejects_sources_and_sinks(self, graph):
        with pytest.raises(PolicyError):
            microbenchmark_operator(graph.operator("src"))
        with pytest.raises(PolicyError):
            microbenchmark_operator(graph.operator("snk"))


class TestOfflineProvisioning:
    def test_plan_sized_by_eq7(self, graph):
        plan = offline_provisioning(
            graph, {"src": 5000.0}, duration=20.0
        )
        # split: 5000 / 926 -> 6 instances.
        assert plan.parallelism_of("split") == 6
        # agg: input 20000/s, capacity ~9259/inst -> 3 instances.
        assert plan.parallelism_of("agg") == 3
        assert plan.parallelism_of("src") == 1
        assert plan.parallelism_of("snk") == 1

    def test_headroom_overprovisions(self, graph):
        plain = offline_provisioning(graph, {"src": 5000.0},
                                     duration=20.0)
        padded = offline_provisioning(
            graph, {"src": 5000.0}, duration=20.0, headroom=1.5
        )
        assert padded.parallelism_of("split") > plain.parallelism_of(
            "split"
        )

    def test_offline_plan_actually_sustains_the_rate(self, graph):
        """End-to-end: deploy the offline plan and verify it keeps up
        with no backpressure — the plan is usable before any online
        adaptation."""
        from repro.engine.simulator import EngineConfig, Simulator

        plan = offline_provisioning(graph, {"src": 5000.0},
                                    duration=20.0)
        sim = Simulator(
            plan, FlinkRuntime(),
            EngineConfig(tick=0.1, track_record_latency=False),
        )
        sim.run_for(30.0)
        window = sim.collect_metrics()
        assert window.source_observed_rates["src"] == pytest.approx(
            5000.0, rel=0.02
        )
        assert not sim.backpressured_operators()

    def test_missing_source_rates_rejected(self, graph):
        with pytest.raises(PolicyError):
            offline_provisioning(graph, {})

    def test_invalid_headroom_rejected(self, graph):
        with pytest.raises(PolicyError):
            offline_provisioning(graph, {"src": 1.0}, headroom=0.5)
