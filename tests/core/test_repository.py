"""Unit tests for the metrics repository (paper Figure 5)."""

import pytest

from repro.core.repository import MetricsRepository
from repro.errors import MetricsError
from tests.conftest import make_window


def window(start, end, rate=100.0, parallelism=2):
    counters = {
        ("op", index): (rate * (end - start), rate * (end - start), 1.0)
        for index in range(parallelism)
    }
    return make_window(counters, start=start, end=end)


class TestReporting:
    def test_report_and_latest(self):
        repo = MetricsRepository()
        first = window(0, 10)
        second = window(10, 20)
        repo.report(first)
        repo.report(second)
        assert len(repo) == 2
        assert repo.latest() is second
        assert repo.total_reported == 2

    def test_out_of_order_rejected(self):
        repo = MetricsRepository()
        repo.report(window(10, 20))
        with pytest.raises(MetricsError, match="in order"):
            repo.report(window(0, 10))

    def test_retention_evicts_oldest(self):
        repo = MetricsRepository(retention=3)
        for index in range(5):
            repo.report(window(index * 10.0, (index + 1) * 10.0))
        assert len(repo) == 3
        assert repo.total_reported == 5
        assert repo.last(3)[0].start == 20.0

    def test_invalid_retention(self):
        with pytest.raises(MetricsError):
            MetricsRepository(retention=0)

    def test_empty_latest(self):
        assert MetricsRepository().latest() is None

    def test_clear(self):
        repo = MetricsRepository()
        repo.report(window(0, 10))
        repo.clear()
        assert len(repo) == 0


class TestLookback:
    def test_merged_lookback_sums_counters(self):
        repo = MetricsRepository()
        repo.report(window(0, 10, rate=100.0))
        repo.report(window(10, 20, rate=100.0))
        merged = repo.merged_lookback(20.0)
        assert merged.duration == pytest.approx(20.0)
        # 100 rec/s over 20 s across both windows.
        assert merged.observed_processing_rate("op") == pytest.approx(
            200.0  # two instances at 100 rec/s each
        )

    def test_lookback_respects_cutoff(self):
        repo = MetricsRepository()
        repo.report(window(0, 10))
        repo.report(window(10, 20))
        repo.report(window(20, 30))
        merged = repo.merged_lookback(15.0)
        assert merged.start == 10.0

    def test_lookback_on_empty(self):
        assert MetricsRepository().merged_lookback(10.0) is None

    def test_invalid_lookback(self):
        with pytest.raises(MetricsError):
            MetricsRepository().merged_lookback(0.0)


class TestOperatorHistory:
    def test_history_tracks_parallelism_changes(self):
        repo = MetricsRepository()
        repo.report(window(0, 10, parallelism=2))
        repo.report(window(10, 20, parallelism=4))
        history = repo.operator_history("op")
        assert [p for p, _ in history] == [2, 4]
        for _, rate in history:
            assert rate > 0

    def test_unmeasured_windows_skipped(self):
        repo = MetricsRepository()
        counters = {("op", 0): (0.0, 0.0, 0.0)}
        repo.report(make_window(counters, start=0, end=10))
        assert repo.operator_history("op") == []

    def test_unknown_operator_empty(self):
        repo = MetricsRepository()
        repo.report(window(0, 10))
        assert repo.operator_history("ghost") == []


class TestControlLoopIntegration:
    def test_loop_reports_into_repository(self, chain_graph):
        from repro.core.controller import ControlLoop
        from repro.core.manager import DS2Controller
        from repro.core.policy import DS2Policy
        from repro.dataflow.physical import PhysicalPlan
        from repro.engine.runtimes import FlinkRuntime
        from repro.engine.simulator import EngineConfig, Simulator

        repo = MetricsRepository(retention=4)
        sim = Simulator(
            PhysicalPlan(chain_graph, {"worker": 2}),
            FlinkRuntime(),
            EngineConfig(tick=0.1, track_record_latency=False),
        )
        loop = ControlLoop(
            sim,
            DS2Controller(DS2Policy(chain_graph)),
            policy_interval=5.0,
            repository=repo,
        )
        loop.run(40.0)
        assert repo.total_reported == 8
        assert len(repo) == 4  # retention applied
        assert repo.operator_history("worker")
