"""The scaling manager's hardening against partial telemetry failures:
truncated windows, stale windows, incomplete metrics, degraded mode."""

import pytest

from repro.core.controller import Observation
from repro.core.manager import DS2Controller, ManagerConfig
from repro.core.policy import DS2Policy
from repro.errors import PolicyError, StaleMetricsError
from tests.conftest import make_window


def steady_observation(
    chain_graph,
    source_rate=1000.0,
    achieved=1000.0,
    parallelism=2,
    per_instance_rate=500.0,
    time=0.0,
    age=0.0,
    **window_kwargs,
):
    """A steady-state observation: the worker runs at its optimum (two
    instances, each at half the source rate, fully utilized)."""
    counters = {
        ("worker", index): (
            per_instance_rate * 10.0,
            per_instance_rate * 10.0,
            10.0,
        )
        for index in range(parallelism)
    }
    counters[("snk", 0)] = (1e6, 0.0, 1.0)
    window = make_window(
        counters,
        start=time,
        end=time + 10.0,
        source_observed_rates={"src": achieved},
        **window_kwargs,
    )
    return Observation(
        time=time + 10.0 + age,
        window=window,
        source_target_rates={"src": source_rate},
        current_parallelism={"src": 1, "worker": parallelism, "snk": 1},
        backpressured=(),
        in_outage=False,
        graph=chain_graph,
    )


def hardened(chain_graph, **config):
    return DS2Controller(
        DS2Policy(chain_graph), ManagerConfig(**config)
    )


def legacy(chain_graph, **config):
    config.setdefault("completeness_compensation", False)
    config.setdefault("min_completeness", 0.0)
    config.setdefault("max_window_age_intervals", None)
    return DS2Controller(
        DS2Policy(chain_graph, completeness_scaling=False),
        ManagerConfig(**config),
    )


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"min_completeness": -0.1},
        {"min_completeness": 1.1},
        {"max_window_age_intervals": 0},
        {"max_window_age_intervals": -2},
    ])
    def test_invalid_hardening_configs_rejected(self, kwargs):
        with pytest.raises(PolicyError):
            ManagerConfig(**kwargs)

    def test_defaults_enable_hardening(self):
        config = ManagerConfig()
        assert config.completeness_compensation
        assert config.min_completeness == 0.5
        assert config.max_window_age_intervals == 2


class TestTruncatedWindows:
    def test_truncated_window_skipped(self, chain_graph):
        ctrl = hardened(chain_graph)
        skipped = ctrl.on_metrics(
            steady_observation(
                chain_graph, parallelism=1, truncated=True
            )
        )
        assert skipped is None
        # The same under-provisioned window untruncated scales up.
        acted = ctrl.on_metrics(
            steady_observation(chain_graph, parallelism=1)
        )
        assert acted == {"worker": 2}


class TestStaleWindowGuard:
    def test_stale_window_skipped_and_counted(self, chain_graph):
        ctrl = hardened(chain_graph)
        # Window ended 30 s before the observation at a 10 s interval:
        # 3 intervals old > the default bound of 2.
        result = ctrl.on_metrics(
            steady_observation(chain_graph, parallelism=1, age=30.0)
        )
        assert result is None
        assert ctrl.stale_windows_skipped == 1

    def test_fresh_window_within_bound_acted_on(self, chain_graph):
        ctrl = hardened(chain_graph)
        result = ctrl.on_metrics(
            steady_observation(chain_graph, parallelism=1, age=15.0)
        )
        assert result == {"worker": 2}
        assert ctrl.stale_windows_skipped == 0

    def test_guard_disabled_with_none(self, chain_graph):
        ctrl = hardened(chain_graph, max_window_age_intervals=None)
        result = ctrl.on_metrics(
            steady_observation(chain_graph, parallelism=1, age=1e6)
        )
        assert result == {"worker": 2}

    def test_check_fresh_raises_stale_metrics_error(self, chain_graph):
        ctrl = hardened(chain_graph)
        with pytest.raises(StaleMetricsError):
            ctrl._check_fresh(
                steady_observation(chain_graph, age=30.0)
            )

    def test_reset_clears_counters(self, chain_graph):
        ctrl = hardened(chain_graph)
        ctrl.on_metrics(steady_observation(chain_graph, age=30.0))
        assert ctrl.stale_windows_skipped == 1
        ctrl.reset()
        assert ctrl.stale_windows_skipped == 0
        assert ctrl.degraded_intervals == 0


class TestDegradedMode:
    def test_freezes_below_completeness_floor(self, chain_graph):
        ctrl = hardened(chain_graph, min_completeness=0.6)
        result = ctrl.on_metrics(
            steady_observation(
                chain_graph,
                parallelism=1,
                completeness={"worker": 0.5},
            )
        )
        assert result is None
        assert ctrl.degraded
        assert ctrl.degraded_intervals == 1

    def test_recovers_when_metrics_return(self, chain_graph):
        ctrl = hardened(chain_graph, min_completeness=0.6)
        ctrl.on_metrics(
            steady_observation(
                chain_graph,
                parallelism=1,
                completeness={"worker": 0.5},
            )
        )
        assert ctrl.degraded
        result = ctrl.on_metrics(
            steady_observation(chain_graph, parallelism=1)
        )
        assert not ctrl.degraded
        assert result == {"worker": 2}

    def test_floor_zero_disables_degraded_mode(self, chain_graph):
        ctrl = hardened(chain_graph, min_completeness=0.0)
        result = ctrl.on_metrics(
            steady_observation(
                chain_graph,
                parallelism=1,
                completeness={"worker": 0.5},
                registered_parallelism={"worker": 2},
            )
        )
        # Not frozen: the model compensates instead.
        assert result is not None or not ctrl.degraded


class TestCompletenessCompensation:
    def _dropout_observation(self, chain_graph):
        """Half the source's reporters are silent: the monitored target
        and observed rates both read 500 of the true 1000, while the
        workers demonstrably still process the full load."""
        return steady_observation(
            chain_graph,
            source_rate=500.0,
            achieved=500.0,
            completeness={"src": 0.5},
            registered_parallelism={"src": 2, "worker": 2, "snk": 1},
        )

    def test_hardened_holds_through_source_dropout(self, chain_graph):
        ctrl = hardened(chain_graph)
        result = ctrl.on_metrics(self._dropout_observation(chain_graph))
        assert result is None  # compensated: configuration is optimal
        assert not ctrl.degraded

    def test_legacy_spuriously_scales_down(self, chain_graph):
        ctrl = legacy(chain_graph)
        result = ctrl.on_metrics(self._dropout_observation(chain_graph))
        assert result == {"worker": 1}  # halved target -> halved job

    def test_flag_disabled_reproduces_legacy_failure(self, chain_graph):
        # Only the compensation flag differs from the hardened default.
        ctrl = hardened(
            chain_graph,
            completeness_compensation=False,
            min_completeness=0.0,
        )
        result = ctrl.on_metrics(self._dropout_observation(chain_graph))
        assert result == {"worker": 1}
