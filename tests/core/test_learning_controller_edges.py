"""Edge cases of the learning controller's correction step."""

import pytest

from repro.core.controller import Observation
from repro.core.learning import (
    LearningDS2Controller,
    ScalingCurve,
    ScalingCurveLearner,
)
from repro.core.manager import ManagerConfig
from repro.core.policy import DS2Policy
from tests.conftest import make_window


def observation(chain_graph, worker_rate=500.0, parallelism=1):
    counters = {
        ("worker", index): (worker_rate, worker_rate, 1.0)
        for index in range(parallelism)
    }
    counters[("snk", 0)] = (1e6, 0.0, 1.0)
    window = make_window(
        counters, source_observed_rates={"src": 1000.0}
    )
    return Observation(
        time=10.0,
        window=window,
        source_target_rates={"src": 1000.0},
        current_parallelism={
            "src": 1, "worker": parallelism, "snk": 1
        },
        backpressured=(),
        in_outage=False,
        graph=chain_graph,
    )


class TestLearningControllerEdges:
    def make(self, chain_graph, **config):
        return LearningDS2Controller(
            DS2Policy(chain_graph), ManagerConfig(**config)
        )

    def test_behaves_like_vanilla_before_enough_levels(
        self, chain_graph
    ):
        ctrl = self.make(chain_graph)
        decision = ctrl.on_metrics(observation(chain_graph))
        # One observed level only: the linear model's answer stands.
        assert decision == {"worker": 2}

    def test_learns_from_observations(self, chain_graph):
        ctrl = self.make(chain_graph)
        ctrl.on_metrics(observation(chain_graph, 500.0, parallelism=1))
        ctrl.on_metrics(observation(chain_graph, 400.0, parallelism=2))
        assert ctrl.learner.curve_for("worker") is not None

    def test_correction_applies_learned_curve(self, chain_graph):
        ctrl = self.make(chain_graph)
        # Synthetic strongly sub-linear history: r(1)=500, r(5)=250.
        for p, rate in ((1, 500.0), (5, 250.0)):
            for _ in range(2):
                ctrl.learner.observe("worker", p, rate)
        # Linear model says 1000/500 = 2; the curve (alpha=0.125) says
        # p*r(p) >= 1000 needs 3 instances.
        decision = ctrl.on_metrics(observation(chain_graph, 500.0))
        assert decision == {"worker": 3}

    def test_saturating_curve_falls_back_to_model(self, chain_graph):
        ctrl = self.make(chain_graph)
        # Aggregate throughput saturates at r1/alpha = 500/1.0... use
        # a curve whose asymptote is below the 1000 target.
        for p, rate in ((1, 400.0), (2, 200.0)):
            for _ in range(2):
                ctrl.learner.observe("worker", p, rate)
        curve = ctrl.learner.curve_for("worker")
        assert curve.parallelism_for(1000.0) is None
        # The learned inversion is unusable: keep the model's estimate
        # rather than dropping the decision.
        decision = ctrl.on_metrics(observation(chain_graph, 400.0))
        assert decision is not None
        assert decision["worker"] >= 2

    def test_corrected_noop_returns_none(self, chain_graph):
        ctrl = self.make(chain_graph)
        # Curve says current configuration is already right even
        # though the linear model would propose a change.
        for p, rate in ((2, 1200.0), (4, 1100.0)):
            for _ in range(2):
                ctrl.learner.observe("worker", p, rate)
        obs = observation(chain_graph, 450.0, parallelism=2)
        decision = ctrl.on_metrics(obs)
        # Linear: 1000/450 = 2.2 -> 3; learned curve: 2 instances at
        # ~1150/s each already cover the target -> no action.
        assert decision is None
