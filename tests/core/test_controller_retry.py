"""Retry-with-backoff in the control loop, driven end-to-end through a
real simulator with injected rescale failures."""

import pytest

from repro.core.controller import (
    ControlLoop,
    Controller,
    RetryConfig,
)
from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    map_operator,
    sink,
    source,
)
from repro.dataflow.physical import PhysicalPlan
from repro.dataflow.state import SavepointModel
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.errors import PolicyError
from repro.faults import FaultInjector, FaultSchedule, RescaleFailure


class ScaleTo(Controller):
    """Stub controller that keeps proposing one fixed parallelism."""

    name = "scale-to"

    def __init__(self, desired, repeat=True):
        self._desired = dict(desired)
        self._repeat = repeat
        self._proposed = False

    def on_metrics(self, observation):
        if observation.in_outage:
            return None
        if self._repeat or not self._proposed:
            self._proposed = True
            return dict(self._desired)
        return None


def make_loop(schedule, controller, retry=RetryConfig(), interval=10.0):
    graph = LogicalGraph(
        [
            source("src", rate=RateSchedule.constant(1000.0)),
            map_operator("op", costs=CostModel(processing_cost=1e-4)),
            sink("snk"),
        ],
        [Edge("src", "op"), Edge("op", "snk")],
    )
    plan = PhysicalPlan(graph, {"src": 1, "op": 2})
    simulator = Simulator(
        plan,
        FlinkRuntime(savepoint=SavepointModel.instant()),
        EngineConfig(tick=0.5, track_record_latency=False),
    )
    job = FaultInjector(simulator, schedule)
    return ControlLoop(
        job, controller, policy_interval=interval, retry=retry
    )


class TestRetryConfig:
    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_base": 0.5},
        {"initial_backoff_intervals": 0.0},
        {"max_backoff_intervals": 0.5},  # < initial of 1.0
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(PolicyError):
            RetryConfig(**kwargs)

    def test_backoff_doubles_and_caps(self):
        config = RetryConfig(
            max_attempts=6,
            backoff_base=2.0,
            initial_backoff_intervals=1.0,
            max_backoff_intervals=8.0,
        )
        assert [config.backoff_intervals(a) for a in range(1, 6)] == [
            1.0, 2.0, 4.0, 8.0, 8.0,
        ]

    def test_attempt_must_be_positive(self):
        with pytest.raises(PolicyError):
            RetryConfig().backoff_intervals(0)


class TestLoopRetry:
    def test_exponential_backoff_then_success(self):
        # Three armed failures: attempts at t=10, 20 (wait 1 interval),
        # 40 (wait 2) all fail; the fourth at t=80 (wait 4) succeeds.
        schedule = FaultSchedule([
            RescaleFailure(time=0.0, mode="abort", count=3),
        ])
        loop = make_loop(schedule, ScaleTo({"op": 4}))
        result = loop.run(120.0)
        assert [
            (f.time, f.attempt) for f in result.failed_rescales
        ] == [(10.0, 1), (20.0, 2), (40.0, 3)]
        assert [e.time for e in result.events] == [80.0]
        # The configuration is fully applied, never partial.
        assert loop.simulator.plan.parallelism == {
            "src": 1, "op": 4, "snk": 1,
        }

    def test_abandons_after_max_attempts(self):
        schedule = FaultSchedule([
            RescaleFailure(time=0.0, mode="abort", count=3),
        ])
        loop = make_loop(
            schedule,
            ScaleTo({"op": 4}, repeat=False),
            retry=RetryConfig(max_attempts=2),
        )
        result = loop.run(120.0)
        assert [f.attempt for f in result.failed_rescales] == [1, 2]
        assert result.events == []
        assert loop.simulator.plan.parallelism["op"] == 2

    def test_retry_none_never_retries(self):
        schedule = FaultSchedule([
            RescaleFailure(time=0.0, mode="abort", count=1),
        ])
        loop = make_loop(
            schedule, ScaleTo({"op": 4}, repeat=False), retry=None
        )
        result = loop.run(60.0)
        assert len(result.failed_rescales) == 1
        assert result.events == []
        assert loop.simulator.plan.parallelism["op"] == 2

    def test_fresh_decisions_reattempt_without_retry(self):
        # With retry disabled a *fresh* controller decision still gets
        # its own first attempt — only loop-driven retries are off.
        schedule = FaultSchedule([
            RescaleFailure(time=0.0, mode="abort", count=1),
        ])
        loop = make_loop(schedule, ScaleTo({"op": 4}), retry=None)
        result = loop.run(30.0)
        assert [f.attempt for f in result.failed_rescales] == [1]
        assert [e.time for e in result.events] == [20.0]
        assert loop.simulator.plan.parallelism["op"] == 4

    def test_no_failures_means_no_retry_state(self):
        loop = make_loop(FaultSchedule([]), ScaleTo({"op": 4}))
        result = loop.run(30.0)
        assert result.failed_rescales == []
        assert [e.time for e in result.events] == [10.0]
