"""Unit tests for the DS2 scaling manager (section 4.2.1-4.2.3)."""

import pytest

from repro.core.controller import Observation
from repro.core.manager import DS2Controller, ManagerConfig
from repro.core.policy import DS2Policy
from repro.errors import PolicyError
from tests.conftest import make_window


def observation(
    chain_graph,
    worker_rate=500.0,
    source_rate=1000.0,
    achieved=1000.0,
    parallelism=1,
    in_outage=False,
    outage_fraction=0.0,
    time=0.0,
    worker_counters=None,
):
    counters = worker_counters or {
        ("worker", index): (worker_rate, worker_rate, 1.0)
        for index in range(parallelism)
    }
    counters[("snk", 0)] = (1e6, 0.0, 1.0)
    window = make_window(
        counters,
        start=time,
        end=time + 10.0,
        source_observed_rates={"src": achieved},
        outage_fraction=outage_fraction,
    )
    current = {"src": 1, "worker": parallelism, "snk": 1}
    return Observation(
        time=time + 10.0,
        window=window,
        source_target_rates={"src": source_rate},
        current_parallelism=current,
        backpressured=(),
        in_outage=in_outage,
        graph=chain_graph,
    )


def controller(chain_graph, **config):
    return DS2Controller(
        DS2Policy(chain_graph), ManagerConfig(**config)
    )


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"warmup_intervals": -1},
        {"activation_intervals": 0},
        {"target_ratio": 0.0},
        {"target_ratio": 1.5},
        {"activation_aggregate": "mean"},
        {"suppress_minor_change": -1},
        {"degradation_factor": 0.0},
        {"max_useless_decisions": 0},
        {"max_rate_compensation": 0.9},
        {"skew_imbalance_threshold": 0.5},
        {"skew_saturation_threshold": 0.0},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(PolicyError):
            ManagerConfig(**kwargs)


class TestWarmup:
    def test_initial_warmup_skips_decisions(self, chain_graph):
        ctrl = controller(chain_graph, warmup_intervals=2)
        assert ctrl.on_metrics(observation(chain_graph)) is None
        assert ctrl.on_metrics(observation(chain_graph)) is None
        assert ctrl.on_metrics(observation(chain_graph)) is not None

    def test_warmup_after_rescale(self, chain_graph):
        ctrl = controller(chain_graph, warmup_intervals=1)
        assert ctrl.on_metrics(observation(chain_graph)) is None
        decision = ctrl.on_metrics(observation(chain_graph))
        assert decision == {"worker": 2}
        ctrl.notify_rescaled(0.0, 30.0, {"worker": 2})
        # Next interval is ignored (warm-up), then decisions resume.
        assert ctrl.on_metrics(
            observation(chain_graph, parallelism=2)
        ) is None
        assert ctrl.on_metrics(
            observation(chain_graph, parallelism=2)
        ) is None  # stable: no change proposed

    def test_outage_windows_always_skipped(self, chain_graph):
        ctrl = controller(chain_graph)
        obs = observation(chain_graph, outage_fraction=0.3)
        assert ctrl.on_metrics(obs) is None
        obs = observation(chain_graph, in_outage=True)
        assert ctrl.on_metrics(obs) is None


class TestActivation:
    def test_waits_for_enough_decisions(self, chain_graph):
        ctrl = controller(chain_graph, activation_intervals=3)
        assert ctrl.on_metrics(observation(chain_graph)) is None
        assert ctrl.on_metrics(observation(chain_graph)) is None
        decision = ctrl.on_metrics(observation(chain_graph))
        assert decision == {"worker": 2}

    def test_median_aggregation(self, chain_graph):
        ctrl = controller(
            chain_graph,
            activation_intervals=3,
            activation_aggregate="median",
        )
        # Rates imply parallelism 2, 2, 6 -> median 2.
        ctrl.on_metrics(observation(chain_graph, worker_rate=500.0))
        ctrl.on_metrics(observation(chain_graph, worker_rate=500.0))
        decision = ctrl.on_metrics(
            observation(chain_graph, worker_rate=180.0)
        )
        assert decision == {"worker": 2}

    def test_max_aggregation(self, chain_graph):
        ctrl = controller(
            chain_graph,
            activation_intervals=3,
            activation_aggregate="max",
        )
        ctrl.on_metrics(observation(chain_graph, worker_rate=500.0))
        ctrl.on_metrics(observation(chain_graph, worker_rate=500.0))
        decision = ctrl.on_metrics(
            observation(chain_graph, worker_rate=180.0)
        )
        assert decision == {"worker": 6}

    def test_pending_cleared_after_rescale(self, chain_graph):
        ctrl = controller(chain_graph, activation_intervals=2)
        ctrl.on_metrics(observation(chain_graph))
        ctrl.notify_rescaled(0.0, 10.0, {"worker": 2})
        # The deque restarts: one more observation is not enough.
        assert ctrl.on_metrics(observation(chain_graph)) is None


class TestMinorChangeSuppression:
    def test_suppresses_small_delta(self, chain_graph):
        ctrl = controller(chain_graph, suppress_minor_change=1)
        # worker needs 2, currently 1: delta 1 -> suppressed.
        assert ctrl.on_metrics(observation(chain_graph)) is None

    def test_large_delta_applies(self, chain_graph):
        ctrl = controller(chain_graph, suppress_minor_change=1)
        decision = ctrl.on_metrics(
            observation(chain_graph, worker_rate=200.0)
        )
        assert decision == {"worker": 5}


class TestTargetRateCompensation:
    def test_compensates_when_target_missed(self, chain_graph):
        ctrl = controller(chain_graph)
        # Model says 2 instances; deploy them.
        ctrl.on_metrics(observation(chain_graph))
        ctrl.notify_rescaled(0.0, 0.0, {"worker": 2})
        # At 2 instances the model is satisfied, but the source only
        # achieves 80% of the target: compensation kicks in.
        decision = ctrl.on_metrics(
            observation(chain_graph, parallelism=2, achieved=800.0)
        )
        assert decision is not None
        assert decision["worker"] == 3
        assert ctrl.rate_compensation == pytest.approx(1.25)

    def test_compensation_resets_when_healthy(self, chain_graph):
        ctrl = controller(chain_graph)
        ctrl.on_metrics(observation(chain_graph))
        ctrl.notify_rescaled(0.0, 0.0, {"worker": 2})
        ctrl.on_metrics(
            observation(chain_graph, parallelism=2, achieved=800.0)
        )
        assert ctrl.rate_compensation > 1.0
        ctrl.notify_rescaled(0.0, 0.0, {"worker": 3})
        # With 3 instances the target is reached (use rates that keep
        # the model satisfied at p=3).
        ctrl.on_metrics(
            observation(
                chain_graph,
                parallelism=3,
                worker_rate=500.0,
                achieved=1000.0,
            )
        )
        assert ctrl.rate_compensation == 1.0

    def test_compensation_capped(self, chain_graph):
        ctrl = controller(chain_graph, max_rate_compensation=1.5)
        ctrl.on_metrics(observation(chain_graph))
        ctrl.notify_rescaled(0.0, 0.0, {"worker": 2})
        ctrl.on_metrics(
            observation(chain_graph, parallelism=2, achieved=100.0)
        )
        assert ctrl.rate_compensation <= 1.5

    def test_repeated_failure_freezes(self, chain_graph):
        ctrl = controller(chain_graph, max_useless_decisions=2)
        # Start under-provisioned and under target.
        first = ctrl.on_metrics(observation(chain_graph, achieved=450.0))
        assert first == {"worker": 2}
        ctrl.notify_rescaled(0.0, 0.0, {"worker": 2})
        # Model satisfied at p=2 but the target is still missed (and
        # throughput did not collapse, so no rollback): compensate once.
        comp = ctrl.on_metrics(
            observation(chain_graph, parallelism=2, achieved=400.0)
        )
        assert comp == {"worker": 4}
        assert ctrl.rate_compensation == pytest.approx(2.0)
        ctrl.notify_rescaled(0.0, 0.0, {"worker": 4})
        # Even the compensated configuration cannot reach the target
        # and no higher compensation is available: useless decisions
        # accumulate until the manager freezes.
        for _ in range(3):
            ctrl.on_metrics(
                observation(chain_graph, parallelism=4, achieved=400.0)
            )
        assert ctrl.frozen
        assert ctrl.on_metrics(observation(chain_graph)) is None


class TestSkewDetection:
    def skewed_observation(self, chain_graph, achieved=500.0):
        # Hot instance saturated (useful 10/10), sibling half idle.
        counters = {
            ("worker", 0): (5000.0, 5000.0, 10.0),
            ("worker", 1): (1000.0, 1000.0, 2.0),
        }
        return observation(
            chain_graph,
            parallelism=2,
            achieved=achieved,
            worker_counters=counters,
        )

    def test_skew_detected(self, chain_graph):
        ctrl = controller(chain_graph)
        obs = self.skewed_observation(chain_graph)
        assert ctrl.detect_skewed_operators(obs) == ("worker",)

    def test_balanced_not_detected(self, chain_graph):
        ctrl = controller(chain_graph)
        obs = observation(chain_graph, parallelism=2)
        assert ctrl.detect_skewed_operators(obs) == ()

    def test_no_compensation_under_skew(self, chain_graph):
        ctrl = controller(chain_graph, max_useless_decisions=1)
        obs = self.skewed_observation(chain_graph)
        # Model satisfied (aggregate true rate ample), target missed,
        # but skew detected: no compensation, freeze instead.
        decision = ctrl.on_metrics(obs)
        assert decision is None
        assert ctrl.frozen
        assert ctrl.rate_compensation == 1.0


class TestRollback:
    def test_rolls_back_degrading_action(self, chain_graph):
        ctrl = controller(chain_graph, degradation_factor=0.8)
        decision = ctrl.on_metrics(observation(chain_graph))
        assert decision == {"worker": 2}
        ctrl.notify_rescaled(0.0, 0.0, {"worker": 2})
        # After the action the achieved rate collapsed below both the
        # pre-action rate and the target: roll back.
        rollback = ctrl.on_metrics(
            observation(chain_graph, parallelism=2, achieved=100.0,
                        worker_rate=50.0)
        )
        assert rollback is not None
        assert rollback["worker"] == 1

    def test_no_rollback_when_target_still_met(self, chain_graph):
        # A scale-down that lowers throughput to a *lower target* is
        # expected, not a regression.
        ctrl = controller(chain_graph)
        decision = ctrl.on_metrics(
            observation(chain_graph, worker_rate=500.0,
                        source_rate=2000.0, achieved=2000.0,
                        parallelism=2)
        )
        assert decision == {"worker": 4}
        ctrl.notify_rescaled(0.0, 0.0, {"worker": 4})
        follow_up = ctrl.on_metrics(
            observation(chain_graph, parallelism=4, source_rate=1000.0,
                        achieved=1000.0)
        )
        # New decision for the lower rate, not a rollback to 4.
        assert follow_up == {"worker": 2}

    def test_rollback_disabled(self, chain_graph):
        ctrl = controller(
            chain_graph, rollback_on_degradation=False
        )
        ctrl.on_metrics(observation(chain_graph))
        ctrl.notify_rescaled(0.0, 0.0, {"worker": 2})
        result = ctrl.on_metrics(
            observation(chain_graph, parallelism=2, achieved=100.0,
                        worker_rate=500.0)
        )
        # Without rollback the manager just keeps the configuration
        # (model satisfied) or compensates; never returns to 1.
        assert result is None or result["worker"] >= 2


class TestReset:
    def test_reset_restores_initial_state(self, chain_graph):
        ctrl = controller(chain_graph, warmup_intervals=1,
                          max_useless_decisions=1)
        ctrl.on_metrics(observation(chain_graph))  # consumes warm-up
        decision = ctrl.on_metrics(observation(chain_graph))
        assert decision is not None
        ctrl.reset()
        # Warm-up applies again after reset.
        assert ctrl.on_metrics(observation(chain_graph)) is None
        assert not ctrl.frozen
        assert ctrl.rate_compensation == 1.0
