"""The shared capped-exponential-backoff helper.

Both retry layers (controller ``RetryConfig`` in policy intervals,
campaign ``CellRetryPolicy`` in wall seconds) delegate here; the curve
and the validation vocabulary are pinned so neither can drift.
"""

import pytest

from repro.core.backoff import capped_backoff, invalid_backoff_reason


class TestCappedBackoff:
    def test_doubles_from_initial_until_the_cap(self):
        waits = [
            capped_backoff(n, base=2.0, initial=0.25, cap=4.0)
            for n in range(1, 8)
        ]
        assert waits == [0.25, 0.5, 1.0, 2.0, 4.0, 4.0, 4.0]

    def test_base_one_is_constant(self):
        assert all(
            capped_backoff(n, base=1.0, initial=3.0, cap=10.0) == 3.0
            for n in range(1, 5)
        )

    def test_cap_below_initial_curve_applies_immediately(self):
        assert capped_backoff(1, base=2.0, initial=5.0, cap=2.0) == 2.0

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="attempt must be >= 1"):
            capped_backoff(0, base=2.0, initial=1.0, cap=2.0)


class TestInvalidBackoffReason:
    def test_valid_triple_has_no_reason(self):
        assert (
            invalid_backoff_reason(base=2.0, initial=0.25, cap=4.0)
            is None
        )

    @pytest.mark.parametrize(
        "kwargs, expected",
        [
            (
                {"base": 0.9, "initial": 1.0, "cap": 2.0},
                "backoff_base must be >= 1",
            ),
            (
                {"base": 2.0, "initial": 0.0, "cap": 2.0},
                "initial_backoff must be > 0",
            ),
            (
                {"base": 2.0, "initial": 3.0, "cap": 2.0},
                "max_backoff must be >= initial_backoff",
            ),
        ],
    )
    def test_each_violation_is_named(self, kwargs, expected):
        assert invalid_backoff_reason(**kwargs) == expected

    def test_vocabulary_is_injectable(self):
        reason = invalid_backoff_reason(
            base=0.5,
            initial=1.0,
            cap=2.0,
            base_name="growth",
        )
        assert reason == "growth must be >= 1"
