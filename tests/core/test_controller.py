"""Unit tests for the control loop wiring."""

import pytest

from repro.core.controller import ControlLoop, Controller, Observation
from repro.core.manager import DS2Controller, ManagerConfig
from repro.core.policy import DS2Policy
from repro.dataflow.physical import PhysicalPlan
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.errors import PolicyError


class ScriptedController(Controller):
    """Returns a fixed sequence of desired parallelism dicts."""

    name = "scripted"

    def __init__(self, script):
        self.script = list(script)
        self.observations = []
        self.rescaled = []

    def on_metrics(self, observation):
        self.observations.append(observation)
        if self.script:
            return self.script.pop(0)
        return None

    def notify_rescaled(self, time, outage_seconds, new_parallelism):
        self.rescaled.append((time, dict(new_parallelism)))


def simulator(chain_graph, parallelism=1):
    plan = PhysicalPlan(chain_graph, {"worker": parallelism})
    return Simulator(
        plan,
        FlinkRuntime(),
        EngineConfig(tick=0.1, track_record_latency=False),
    )


class TestControlLoop:
    def test_policy_invoked_once_per_interval(self, chain_graph):
        ctrl = ScriptedController([])
        loop = ControlLoop(simulator(chain_graph), ctrl,
                           policy_interval=5.0)
        loop.run(20.0)
        assert len(ctrl.observations) == 4

    def test_observation_contents(self, chain_graph):
        ctrl = ScriptedController([])
        loop = ControlLoop(simulator(chain_graph), ctrl,
                           policy_interval=5.0)
        loop.run(5.0)
        obs = ctrl.observations[0]
        assert obs.time == pytest.approx(5.0)
        assert obs.source_target_rates == {"src": 1000.0}
        assert obs.current_parallelism["worker"] == 1
        assert obs.graph is chain_graph

    def test_desired_parallelism_applied(self, chain_graph):
        ctrl = ScriptedController([{"worker": 3}])
        sim = simulator(chain_graph)
        loop = ControlLoop(sim, ctrl, policy_interval=5.0)
        result = loop.run(60.0)
        assert result.scaling_steps == 1
        assert result.events[0].applied["worker"] == 3
        assert sim.plan.parallelism_of("worker") == 3
        assert ctrl.rescaled  # notify_rescaled was called

    def test_non_scalable_requests_dropped(self, chain_graph):
        # Sources and sinks are not in the default scalable set.
        ctrl = ScriptedController([{"src": 5}, {"snk": 5}])
        sim = simulator(chain_graph)
        loop = ControlLoop(sim, ctrl, policy_interval=5.0)
        result = loop.run(20.0)
        assert result.scaling_steps == 0
        assert sim.plan.parallelism_of("src") == 1

    def test_noop_decision_not_recorded_as_event(self, chain_graph):
        ctrl = ScriptedController([{"worker": 1}])
        loop = ControlLoop(simulator(chain_graph), ctrl,
                           policy_interval=5.0)
        result = loop.run(20.0)
        assert result.scaling_steps == 0

    def test_decisions_timeline_recorded(self, chain_graph):
        ctrl = ScriptedController([None, {"worker": 2}])
        loop = ControlLoop(simulator(chain_graph), ctrl,
                           policy_interval=5.0)
        result = loop.run(10.0)
        assert len(result.decisions) == 2
        assert result.decisions[0][1] is None
        assert result.decisions[1][1] == {"worker": 2}

    def test_tick_observer_sees_every_tick(self, chain_graph):
        seen = []
        ctrl = ScriptedController([])
        loop = ControlLoop(
            simulator(chain_graph),
            ctrl,
            policy_interval=5.0,
            tick_observer=seen.append,
        )
        loop.run(5.0)
        assert len(seen) == 50  # 5 s at 0.1 s ticks

    def test_invalid_interval_rejected(self, chain_graph):
        with pytest.raises(PolicyError):
            ControlLoop(simulator(chain_graph), ScriptedController([]),
                        policy_interval=0.0)

    def test_unknown_scalable_operator_rejected(self, chain_graph):
        with pytest.raises(PolicyError):
            ControlLoop(
                simulator(chain_graph),
                ScriptedController([]),
                policy_interval=5.0,
                scalable_operators=("ghost",),
            )

    def test_parallelism_trace(self, chain_graph):
        # A decision arriving while a redeploy is in flight is dropped,
        # so script the second action for after the first outage ends.
        ctrl = ScriptedController(
            [{"worker": 2}] + [None] * 6 + [{"worker": 4}]
        )
        sim = simulator(chain_graph)
        loop = ControlLoop(sim, ctrl, policy_interval=10.0)
        result = loop.run(200.0)
        trace = result.parallelism_trace("worker")
        assert [value for _, value in trace] == [2, 4]

    def test_event_reports_pending_parallelism_during_outage(
        self, chain_graph
    ):
        # The plan only switches after the outage, but the event's
        # `applied` already shows the incoming configuration.
        ctrl = ScriptedController([{"worker": 2}])
        sim = simulator(chain_graph)
        loop = ControlLoop(sim, ctrl, policy_interval=5.0)
        result = loop.run(5.0)
        assert result.events[0].applied["worker"] == 2
        assert sim.in_outage


class TestDS2EndToEnd:
    def test_ds2_converges_on_simple_pipeline(self, chain_graph):
        # worker cost 1e-3 => capacity 1000/s/instance (sans overhead);
        # source rate 1000/s with 8% instrumentation needs 2 instances.
        sim = simulator(chain_graph, parallelism=1)
        ctrl = DS2Controller(
            DS2Policy(chain_graph),
            ManagerConfig(warmup_intervals=1, activation_intervals=1),
        )
        loop = ControlLoop(sim, ctrl, policy_interval=10.0)
        result = loop.run(300.0)
        assert sim.plan.parallelism_of("worker") == 2
        assert result.scaling_steps == 1
        assert not sim.backpressured_operators()
