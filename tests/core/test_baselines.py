"""Unit tests for the Dhalion-style and threshold baselines."""

import pytest

from repro.core.baselines import (
    DhalionConfig,
    DhalionController,
    ThresholdConfig,
    ThresholdController,
)
from repro.core.controller import Observation
from repro.errors import PolicyError
from repro.metrics import OperatorHealth
from tests.conftest import make_window


def observation(
    chain_graph,
    health=None,
    parallelism=None,
    worker_useful=5.0,
    in_outage=False,
):
    window = make_window(
        {
            ("worker", 0): (1000.0, 1000.0, worker_useful),
            ("snk", 0): (1000.0, 0.0, 0.1),
        },
        health=health or {},
    )
    return Observation(
        time=10.0,
        window=window,
        source_target_rates={"src": 1000.0},
        current_parallelism=parallelism
        or {"src": 1, "worker": 1, "snk": 1},
        backpressured=tuple(
            name
            for name, h in (health or {}).items()
            if h.backpressure
        ),
        in_outage=in_outage,
        graph=chain_graph,
    )


def bp_health(fraction=0.8, fill=0.95, pending=1000.0):
    return OperatorHealth(
        queue_fill=fill,
        backpressure=True,
        pending_records=pending,
        backpressure_fraction=fraction,
    )


def ok_health():
    return OperatorHealth(
        queue_fill=0.1, backpressure=False, pending_records=10.0
    )


class TestDhalionDiagnosis:
    def test_no_backpressure_no_action(self, chain_graph):
        ctrl = DhalionController()
        obs = observation(chain_graph, health={"worker": ok_health()})
        assert ctrl.on_metrics(obs) is None

    def test_scales_backpressured_operator(self, chain_graph):
        ctrl = DhalionController()
        obs = observation(chain_graph, health={"worker": bp_health()})
        decision = ctrl.on_metrics(obs)
        assert decision is not None
        assert decision["worker"] > 1

    def test_picks_initiator_not_victim(self, diamond_graph):
        # merge initiates; left is only blocked by it.
        ctrl = DhalionController()
        window = make_window(
            {
                ("left", 0): (1.0, 1.0, 0.1),
                ("right", 0): (1.0, 1.0, 0.1),
                ("merge", 0): (1.0, 1.0, 0.1),
                ("snk", 0): (1.0, 0.0, 0.1),
            },
            health={
                "left": bp_health(fill=0.99),
                "merge": bp_health(fill=0.92),
                "right": ok_health(),
            },
        )
        obs = Observation(
            time=10.0,
            window=window,
            source_target_rates={"src": 1000.0},
            current_parallelism={
                name: 1 for name in diamond_graph.names
            },
            backpressured=("left", "merge"),
            in_outage=False,
            graph=diamond_graph,
        )
        decision = ctrl.on_metrics(obs)
        assert decision is not None
        assert list(decision) == ["merge"]

    def test_outage_skipped(self, chain_graph):
        ctrl = DhalionController()
        obs = observation(
            chain_graph, health={"worker": bp_health()}, in_outage=True
        )
        assert ctrl.on_metrics(obs) is None


class TestDhalionResolver:
    def test_scale_factor_from_backpressure_fraction(self, chain_graph):
        ctrl = DhalionController(
            DhalionConfig(backpressure_clamp=0.5, max_scale_factor=4.0)
        )
        parallelism = {"src": 1, "worker": 10, "snk": 1}
        obs = observation(
            chain_graph,
            health={"worker": bp_health(fraction=0.5)},
            parallelism=parallelism,
        )
        decision = ctrl.on_metrics(obs)
        # factor 1/(1-0.5) = 2 -> 20.
        assert decision == {"worker": 20}

    def test_scale_factor_capped(self, chain_graph):
        ctrl = DhalionController(
            DhalionConfig(max_scale_factor=1.5, backpressure_clamp=0.9)
        )
        parallelism = {"src": 1, "worker": 10, "snk": 1}
        obs = observation(
            chain_graph,
            health={"worker": bp_health(fraction=0.9)},
            parallelism=parallelism,
        )
        decision = ctrl.on_metrics(obs)
        assert decision == {"worker": 15}

    def test_minimum_step_of_one(self, chain_graph):
        ctrl = DhalionController()
        obs = observation(
            chain_graph, health={"worker": bp_health(fraction=0.01)}
        )
        decision = ctrl.on_metrics(obs)
        assert decision["worker"] >= 2

    def test_cooldown_after_action(self, chain_graph):
        ctrl = DhalionController(DhalionConfig(cooldown_intervals=2))
        obs = observation(chain_graph, health={"worker": bp_health()})
        assert ctrl.on_metrics(obs) is not None
        ctrl.notify_rescaled(10.0, 60.0, {"worker": 3})
        assert ctrl.on_metrics(obs) is None
        assert ctrl.on_metrics(obs) is None
        assert ctrl.on_metrics(obs) is not None

    def test_scale_down_when_enabled(self, chain_graph):
        ctrl = DhalionController(
            DhalionConfig(scale_down_enabled=True,
                          scale_down_utilization=0.4)
        )
        obs = observation(
            chain_graph,
            health={"worker": ok_health()},
            parallelism={"src": 1, "worker": 4, "snk": 1},
            worker_useful=1.0,  # 10% utilization
        )
        decision = ctrl.on_metrics(obs)
        assert decision == {"worker": 3}

    def test_reset_clears_state(self, chain_graph):
        ctrl = DhalionController()
        ctrl.notify_rescaled(0.0, 0.0, {})
        ctrl.reset()
        obs = observation(chain_graph, health={"worker": bp_health()})
        assert ctrl.on_metrics(obs) is not None

    def test_config_validation(self):
        with pytest.raises(PolicyError):
            DhalionConfig(cooldown_intervals=-1)
        with pytest.raises(PolicyError):
            DhalionConfig(max_scale_factor=1.0)
        with pytest.raises(PolicyError):
            DhalionConfig(backpressure_clamp=1.0)


class TestThresholdController:
    def test_scale_up_over_high_watermark(self, chain_graph):
        ctrl = ThresholdController()
        obs = observation(chain_graph, worker_useful=9.5)
        decision = ctrl.on_metrics(obs)
        assert decision["worker"] == 2

    def test_scale_down_under_low_watermark(self, chain_graph):
        ctrl = ThresholdController()
        obs = observation(
            chain_graph,
            worker_useful=1.0,
            parallelism={"src": 1, "worker": 3, "snk": 1},
        )
        decision = ctrl.on_metrics(obs)
        assert decision["worker"] == 2

    def test_never_below_one(self, chain_graph):
        ctrl = ThresholdController()
        obs = observation(chain_graph, worker_useful=0.1)
        decision = ctrl.on_metrics(obs)
        assert decision is None or decision.get("worker", 1) >= 1

    def test_stable_band_no_action(self, chain_graph):
        ctrl = ThresholdController()
        obs = observation(chain_graph, worker_useful=6.0)
        assert ctrl.on_metrics(obs) is None

    def test_cooldown(self, chain_graph):
        ctrl = ThresholdController(ThresholdConfig(cooldown_intervals=1))
        obs = observation(chain_graph, worker_useful=9.5)
        assert ctrl.on_metrics(obs) is not None
        ctrl.notify_rescaled(0.0, 0.0, {})
        assert ctrl.on_metrics(obs) is None
        assert ctrl.on_metrics(obs) is not None

    def test_config_validation(self):
        with pytest.raises(PolicyError):
            ThresholdConfig(high_utilization=0.3, low_utilization=0.5)
        with pytest.raises(PolicyError):
            ThresholdConfig(step=0)
