"""Tests of the package's public surface."""

import pytest

import repro
from repro.errors import (
    EngineError,
    FaultInjectionError,
    GraphError,
    MetricsError,
    PlanError,
    PolicyError,
    ReconfigurationError,
    ReproError,
    StaleMetricsError,
)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_core_entry_points(self):
        assert callable(repro.compute_optimal_parallelism)
        assert repro.DS2Controller.name == "ds2"

    def test_subpackages_importable(self):
        import repro.core.baselines
        import repro.dataflow.windowing
        import repro.engine.allocation
        import repro.experiments.accuracy
        import repro.experiments.comparison
        import repro.experiments.convergence
        import repro.experiments.dynamic
        import repro.experiments.fault_tolerance
        import repro.experiments.overhead
        import repro.experiments.skew_experiment
        import repro.faults.injector
        import repro.workloads.nexmark.semantics


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        GraphError, PlanError, EngineError, PolicyError,
        MetricsError, ReconfigurationError,
        FaultInjectionError, StaleMetricsError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise GraphError("x")
