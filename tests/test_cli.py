"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_help_without_command(self, capsys):
        assert main([]) == 1
        out = capsys.readouterr().out
        assert "repro" in out

    def test_list_queries(self, capsys):
        assert main(["list-queries"]) == 0
        out = capsys.readouterr().out
        for name in ("Q1", "Q5", "Q11", "Q4", "Q9"):
            assert name in out

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_scale_argument_parsed(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig7", "--scale", "0.25"])
        assert args.experiment == "fig7"
        assert args.scale == 0.25

    def test_faults_argument_parsed(self):
        parser = build_parser()
        args = parser.parse_args([
            "run", "faults",
            "--faults", "crash@600:flatmap",
            "--fault-seed", "7",
        ])
        assert args.experiment == "faults"
        assert args.faults == "crash@600:flatmap"
        assert args.fault_seed == 7

    def test_faults_rejected_for_other_experiments(self, capsys):
        assert main(["run", "fig6", "--faults", "crash@0:x"]) == 2
        assert "--faults" in capsys.readouterr().err

    def test_malformed_fault_spec_rejected(self, capsys):
        assert main(["run", "faults", "--faults", "nonsense"]) == 2
        assert "invalid fault spec" in capsys.readouterr().err

    def test_chaos_arguments_parsed(self):
        parser = build_parser()
        args = parser.parse_args([
            "run", "chaos",
            "--profile", "telemetry",
            "--seeds", "5",
            "--fault-seed", "3",
        ])
        assert args.experiment == "chaos"
        assert args.profile == "telemetry"
        assert args.seeds == 5
        assert args.fault_seed == 3

    def test_chaos_flags_rejected_for_other_experiments(self, capsys):
        assert main(["run", "fig6", "--profile", "mixed"]) == 2
        assert "--profile" in capsys.readouterr().err
        assert main(["run", "faults", "--seeds", "3"]) == 2
        assert "--seeds" in capsys.readouterr().err

    def test_unknown_chaos_profile_rejected(self, capsys):
        assert main(["run", "chaos", "--profile", "volcano"]) == 2
        assert "invalid chaos campaign" in capsys.readouterr().err


class TestCommands:
    def test_decide_prints_optimum(self, capsys):
        assert main(["decide"]) == 0
        out = capsys.readouterr().out
        assert "flatmap" in out and "10" in out
        assert "count" in out and "20" in out

    @pytest.mark.slow
    def test_run_skew_scaled_down(self, capsys):
        assert main(["run", "skew", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "50%" in out
        assert "no-skew optimum" in out

    @pytest.mark.slow
    def test_run_chaos_smoke_profile(self, capsys):
        assert main([
            "run", "chaos", "--profile", "smoke", "--seeds", "2",
            "--scale", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "Chaos campaign 'smoke'" in out
        assert "Crash-recovery outage per runtime" in out
        for runtime in ("flink", "timely", "heron"):
            assert runtime in out
