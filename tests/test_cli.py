"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.analysis.workload_graphs import builtin_graph_names
from repro.cli import EXPERIMENTS, build_parser, main

FIXTURES = Path(__file__).parent / "analysis" / "fixtures"


class TestParser:
    def test_help_without_command(self, capsys):
        assert main([]) == 1
        out = capsys.readouterr().out
        assert "repro" in out

    def test_list_queries(self, capsys):
        assert main(["list-queries"]) == 0
        out = capsys.readouterr().out
        for name in ("Q1", "Q5", "Q11", "Q4", "Q9"):
            assert name in out

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_scale_argument_parsed(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig7", "--scale", "0.25"])
        assert args.experiment == "fig7"
        assert args.scale == 0.25

    def test_faults_argument_parsed(self):
        parser = build_parser()
        args = parser.parse_args([
            "run", "faults",
            "--faults", "crash@600:flatmap",
            "--fault-seed", "7",
        ])
        assert args.experiment == "faults"
        assert args.faults == "crash@600:flatmap"
        assert args.fault_seed == 7

    def test_faults_rejected_for_other_experiments(self, capsys):
        assert main(["run", "fig6", "--faults", "crash@0:x"]) == 2
        assert "--faults" in capsys.readouterr().err

    def test_malformed_fault_spec_rejected(self, capsys):
        assert main(["run", "faults", "--faults", "nonsense"]) == 2
        assert "invalid fault spec" in capsys.readouterr().err

    def test_chaos_arguments_parsed(self):
        parser = build_parser()
        args = parser.parse_args([
            "run", "chaos",
            "--profile", "telemetry",
            "--seeds", "5",
            "--fault-seed", "3",
        ])
        assert args.experiment == "chaos"
        assert args.profile == "telemetry"
        assert args.seeds == 5
        assert args.fault_seed == 3

    def test_chaos_flags_rejected_for_other_experiments(self, capsys):
        assert main(["run", "fig6", "--profile", "mixed"]) == 2
        assert "--profile" in capsys.readouterr().err
        assert main(["run", "faults", "--seeds", "3"]) == 2
        assert "--seeds" in capsys.readouterr().err

    def test_unknown_chaos_profile_rejected(self, capsys):
        assert main(["run", "chaos", "--profile", "volcano"]) == 2
        assert "invalid chaos campaign" in capsys.readouterr().err

    def test_jobs_and_workload_arguments_parsed(self):
        parser = build_parser()
        args = parser.parse_args([
            "run", "chaos",
            "--workload", "nexmark-q5",
            "--jobs", "4",
        ])
        assert args.experiment == "chaos"
        assert args.workload == "nexmark-q5"
        assert args.jobs == 4

    def test_jobs_and_workload_rejected_for_other_experiments(
        self, capsys
    ):
        assert main(["run", "fig6", "--workload", "nexmark-q5"]) == 2
        assert "--workload" in capsys.readouterr().err
        assert main(["run", "faults", "--jobs", "4"]) == 2
        assert "--jobs" in capsys.readouterr().err

    @pytest.mark.parametrize("jobs", ["0", "-3"])
    def test_nonpositive_jobs_rejected(self, jobs, capsys):
        assert main(["run", "chaos", "--jobs", jobs]) == 2
        err = capsys.readouterr().err
        assert "--jobs" in err
        assert "positive" in err

    def test_unknown_chaos_workload_rejected(self, capsys):
        assert main([
            "run", "chaos", "--workload", "volcano", "--seeds", "1",
        ]) == 2
        err = capsys.readouterr().err
        assert "invalid chaos campaign" in err
        assert "nexmark-q5" in err


class TestCheckpointCli:
    def test_checkpoint_arguments_parsed(self):
        parser = build_parser()
        args = parser.parse_args([
            "run", "chaos",
            "--checkpoint", "chaos.ckpt",
            "--resume",
        ])
        assert args.checkpoint == "chaos.ckpt"
        assert args.resume is True

    def test_checkpoint_rejected_for_other_experiments(self, capsys):
        assert main([
            "run", "fig6", "--checkpoint", "chaos.ckpt",
        ]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, capsys):
        assert main(["run", "chaos", "--resume"]) == 2
        err = capsys.readouterr().err
        assert "--resume requires --checkpoint" in err

    def test_resume_of_missing_journal_rejected(self, capsys, tmp_path):
        missing = tmp_path / "nope.ckpt"
        assert main([
            "run", "chaos", "--checkpoint", str(missing), "--resume",
        ]) == 2
        err = capsys.readouterr().err
        assert "unusable checkpoint" in err
        assert "cannot resume" in err

    def test_corrupt_journal_rejected(self, capsys, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text('{"record": "header"}\nnot json\n{"x": 1}\n')
        assert main([
            "run", "chaos", "--checkpoint", str(path), "--resume",
        ]) == 2
        err = capsys.readouterr().err
        assert "unusable checkpoint" in err

    def test_fresh_run_refuses_existing_journal(self, capsys, tmp_path):
        path = tmp_path / "old.ckpt"
        path.write_text('{"record": "header"}\n')
        assert main([
            "run", "chaos", "--checkpoint", str(path),
        ]) == 2
        err = capsys.readouterr().err
        assert "unusable checkpoint" in err
        assert "--resume" in err

    @pytest.mark.slow
    def test_checkpointed_run_then_resume_is_identical(
        self, capsys, tmp_path
    ):
        path = str(tmp_path / "chaos.ckpt")
        argv = [
            "run", "chaos", "--profile", "smoke", "--seeds", "2",
            "--scale", "0.5", "--checkpoint", path,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "Coverage: 6/6 cells completed, 0 quarantined" in first
        # Resuming a finished journal re-runs nothing and reprints
        # the identical report.
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first


class TestLintCommand:
    def test_clean_file_exits_zero(self, capsys):
        assert main(["lint", str(FIXTURES / "clean.py")]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_violations_exit_nonzero(self, capsys):
        path = FIXTURES / "wall_clock.py"
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REPRO101" in out
        assert "wall_clock.py" in out

    def test_default_paths_lint_the_package(self, capsys):
        # No paths -> lint the installed repro tree, which ships clean.
        assert main(["lint"]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_json_format(self, capsys):
        path = FIXTURES / "id_ordering.py"
        assert main(["lint", "--format", "json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] > 0
        assert {
            d["code"] for d in payload["diagnostics"]
        } == {"REPRO105"}

    def test_select_and_ignore(self, capsys):
        path = str(FIXTURES / "unseeded_rng.py")
        assert main(["lint", "--select", "REPRO101", path]) == 0
        capsys.readouterr()
        assert main(["lint", "--ignore", "unseeded-rng", path]) == 0

    def test_unknown_rule_is_usage_error(self, capsys):
        path = str(FIXTURES / "clean.py")
        assert main(["lint", "--select", "REPRO999", path]) == 2
        assert "REPRO999" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", "definitely/not/here.py"]) == 2
        assert capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "REPRO100",
            "REPRO101",
            "REPRO102",
            "REPRO103",
            "REPRO104",
            "REPRO105",
            "REPRO201",
            "REPRO301",
            "REPRO401",
            "REPRO501",
        ):
            assert code in out

    def test_list_rules_groups_by_family(self, capsys):
        main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        for family in (
            "determinism",
            "pickle-safety",
            "worker-shared-state",
            "reduction-order",
            "suppressions",
        ):
            assert family in out

    def test_parallel_rules_fire_through_cli(self, capsys):
        path = FIXTURES / "lambda_factory.py"
        assert main(["lint", str(path)]) == 1
        out = capsys.readouterr().out
        assert "REPRO201" in out
        assert "lambda_factory.py" in out

    def test_select_accepts_family_names(self, capsys):
        path = str(FIXTURES / "lambda_factory.py")
        assert main(["lint", "--select", "worker-shared-state", path]) == 0
        capsys.readouterr()
        assert main(["lint", "--select", "pickle-safety", path]) == 1
        assert "REPRO201" in capsys.readouterr().out

    def test_exclude_skips_subtree(self, capsys):
        assert main(["lint", str(FIXTURES)]) == 1
        capsys.readouterr()
        assert main(
            ["lint", "--exclude", str(FIXTURES), str(FIXTURES)]
        ) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_stale_allow_warnings_do_not_fail_the_run(self, capsys):
        path = FIXTURES / "stale_allow.py"
        assert main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "REPRO501" in out
        assert "warning" in out


class TestCheckGraphCommand:
    def test_all_builtin_graphs_pass(self, capsys):
        assert main(["check-graph", "--all"]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_named_graph_passes(self, capsys):
        assert main(["check-graph", "wordcount-heron"]) == 0
        assert "all checks passed" in capsys.readouterr().out

    def test_no_arguments_is_usage_error(self, capsys):
        assert main(["check-graph"]) == 2
        err = capsys.readouterr().err
        # Usage error lists the built-in names so the fix is obvious.
        assert "wordcount-heron" in err

    def test_unknown_graph_is_usage_error(self, capsys):
        assert main(["check-graph", "no-such-graph"]) == 2
        assert "no-such-graph" in capsys.readouterr().err

    def test_cyclic_spec_exits_nonzero(self, capsys, tmp_path):
        spec = tmp_path / "cyclic.json"
        spec.write_text(json.dumps({
            "name": "cyclic",
            "operators": [
                {"name": "src", "kind": "source", "rate": 10.0},
                {"name": "a"},
                {"name": "b"},
                {"name": "out", "kind": "sink"},
            ],
            "edges": [
                ["src", "a"], ["a", "b"], ["b", "a"], ["a", "out"],
            ],
        }))
        assert main(["check-graph", "--spec", str(spec)]) == 1
        out = capsys.readouterr().out
        assert "GRAPH101" in out
        assert "back edges" in out

    def test_orphan_spec_exits_nonzero_json(self, capsys, tmp_path):
        spec = tmp_path / "orphan.json"
        spec.write_text(json.dumps({
            "name": "orphan",
            "operators": [
                {"name": "src", "kind": "source", "rate": 10.0},
                {"name": "lost"},
                {"name": "out", "kind": "sink"},
            ],
            "edges": [["src", "out"]],
        }))
        assert main([
            "check-graph", "--format", "json", "--spec", str(spec),
        ]) == 1
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "GRAPH104" in codes

    def test_malformed_spec_file_is_usage_error(self, capsys, tmp_path):
        spec = tmp_path / "broken.json"
        spec.write_text("{not json")
        assert main(["check-graph", "--spec", str(spec)]) == 2
        assert capsys.readouterr().err

    def test_registry_names_are_stable(self):
        # The CLI test list stays honest: a rename of a built-in graph
        # shows up here rather than silently changing --all coverage.
        names = builtin_graph_names()
        assert "wordcount-heron" in names
        assert "wordcount-flink" in names
        assert "wordcount-skew" in names
        assert len(names) >= 20


class TestCommands:
    def test_decide_prints_optimum(self, capsys):
        assert main(["decide"]) == 0
        out = capsys.readouterr().out
        assert "flatmap" in out and "10" in out
        assert "count" in out and "20" in out

    @pytest.mark.slow
    def test_run_skew_scaled_down(self, capsys):
        assert main(["run", "skew", "--scale", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "50%" in out
        assert "no-skew optimum" in out

    @pytest.mark.slow
    def test_run_chaos_smoke_profile(self, capsys):
        assert main([
            "run", "chaos", "--profile", "smoke", "--seeds", "2",
            "--scale", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "Chaos campaign 'smoke'" in out
        assert "Crash-recovery outage per runtime" in out
        for runtime in ("flink", "timely", "heron"):
            assert runtime in out

    @pytest.mark.slow
    def test_run_chaos_nexmark_workload_with_jobs(self, capsys):
        assert main([
            "run", "chaos", "--profile", "smoke", "--seeds", "1",
            "--workload", "nexmark-q5", "--jobs", "2",
            "--scale", "0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "Chaos campaign 'smoke' on 'nexmark-q5'" in out
        for controller in ("ds2", "ds2-legacy", "dhalion"):
            assert controller in out


@pytest.fixture(scope="module")
def faults_trace(tmp_path_factory):
    """One traced scaled-down faults run shared by the trace tests."""
    path = tmp_path_factory.mktemp("trace") / "faults.jsonl"
    assert main([
        "run", "fault_tolerance", "--scale", "0.3",
        "--trace", str(path),
    ]) == 0
    return path


class TestTelemetryCommands:
    def test_trace_flags_parsed(self):
        parser = build_parser()
        args = parser.parse_args([
            "run", "faults", "--trace", "out.jsonl", "--telemetry",
        ])
        assert args.trace == "out.jsonl"
        assert args.telemetry is True

    @pytest.mark.slow
    def test_traced_run_writes_valid_jsonl(self, faults_trace, capsys):
        from repro.telemetry import read_trace

        records = read_trace(faults_trace)
        assert records
        # three controllers run back to back: three epochs
        epochs = [r for r in records if r["kind"] == "engine.start"]
        assert len(epochs) == 3

    @pytest.mark.slow
    def test_telemetry_flag_prints_metrics(self, capsys, tmp_path):
        assert main([
            "run", "faults", "--scale", "0.3", "--telemetry",
        ]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_ticks_total counter" in out
        assert "# TYPE repro_engine_step_seconds histogram" in out

    @pytest.mark.slow
    def test_trace_summarize_text(self, faults_trace, capsys):
        assert main(["trace", "summarize", str(faults_trace)]) == 0
        out = capsys.readouterr().out
        assert "decisions:" in out
        assert "engine.start" in out

    @pytest.mark.slow
    def test_trace_summarize_json(self, faults_trace, capsys):
        assert main([
            "trace", "summarize", str(faults_trace),
            "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] > 0
        assert payload["kinds"]["engine.start"] == 3
        assert payload["span"] >= 0

    @pytest.mark.slow
    def test_explain_from_trace(self, faults_trace, capsys):
        assert main(["explain", "--trace", str(faults_trace)]) == 0
        out = capsys.readouterr().out
        assert "decision at t=" in out
        assert "controller=" in out

    @pytest.mark.slow
    def test_explain_index_out_of_range(self, faults_trace, capsys):
        assert main([
            "explain", "--trace", str(faults_trace),
            "--index", "9999",
        ]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_explain_without_trace_renders_oneshot(self, capsys):
        assert main(["explain"]) == 0
        out = capsys.readouterr().out
        assert "decision at t=" in out
        assert "operator" in out
        assert "optimal" in out

    def test_explain_trace_without_audits(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text(
            '{"data":{},"kind":"engine.start","seq":0,"t":0.0}\n'
        )
        assert main(["explain", "--trace", str(path)]) == 2
        assert "no controller.audit" in capsys.readouterr().err

    def test_explain_invalid_trace(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["explain", "--trace", str(path)]) == 2
        assert "invalid trace" in capsys.readouterr().err

    def test_trace_without_subcommand(self, capsys):
        assert main(["trace"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_summarize_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["trace", "summarize", str(missing)]) == 2
        assert "invalid trace" in capsys.readouterr().err


class TestProgressCli:
    def test_progress_flags_parsed(self):
        parser = build_parser()
        args = parser.parse_args(["run", "chaos", "--progress"])
        assert args.progress is True
        args = parser.parse_args([
            "run", "chaos", "--progress", "--no-progress",
        ])
        assert args.progress is False
        args = parser.parse_args(["run", "chaos"])
        assert args.progress is False

    def test_progress_rejected_for_other_experiments(self, capsys):
        assert main(["run", "fig6", "--progress"]) == 2
        assert "--progress" in capsys.readouterr().err

    @pytest.mark.slow
    def test_progress_writes_stderr_only(self, capsys):
        argv = [
            "run", "chaos", "--profile", "smoke", "--seeds", "1",
            "--scale", "0.5",
        ]
        assert main(argv) == 0
        silent = capsys.readouterr()
        assert main(argv + ["--progress"]) == 0
        noisy = capsys.readouterr()
        # stdout (the golden report) is byte-identical; the live
        # progress stream rides on stderr.
        assert noisy.out == silent.out
        assert "done seed=1" in noisy.err


class TestSpansCli:
    def test_spans_argument_parsed(self):
        parser = build_parser()
        args = parser.parse_args([
            "run", "chaos", "--spans", "spans.json",
        ])
        assert args.spans == "spans.json"

    @pytest.mark.slow
    def test_spans_file_written(self, capsys, tmp_path):
        spans = tmp_path / "spans.json"
        assert main([
            "run", "chaos", "--profile", "smoke", "--seeds", "1",
            "--scale", "0.5", "--spans", str(spans),
        ]) == 0
        out = capsys.readouterr().out
        assert f"wrote span profile to {spans}" in out
        payload = json.loads(spans.read_text())
        names = {c["name"] for c in payload["children"]}
        assert "engine.tick" in names
        assert "controller.decide" in names

    @pytest.mark.slow
    def test_spans_do_not_change_report(self, capsys, tmp_path):
        argv = [
            "run", "chaos", "--profile", "smoke", "--seeds", "1",
            "--scale", "0.5",
        ]
        assert main(argv) == 0
        bare = capsys.readouterr().out
        spans = tmp_path / "spans.json"
        assert main(argv + ["--spans", str(spans)]) == 0
        profiled = capsys.readouterr().out
        assert profiled.replace(
            f"wrote span profile to {spans}\n", ""
        ) == bare


class TestReportCommand:
    GOLDEN_JOURNAL = str(
        Path(__file__).parent / "reports" / "smoke_checkpoint.jsonl"
    )

    def test_report_text(self, capsys):
        assert main([
            "report", "--checkpoint", self.GOLDEN_JOURNAL,
        ]) == 0
        out = capsys.readouterr().out
        assert "chaos run report" in out
        assert "cells: 6/6 completed" in out

    def test_report_json_matches_golden(self, capsys):
        assert main([
            "report", "--checkpoint", self.GOLDEN_JOURNAL,
            "--format", "json",
        ]) == 0
        out = capsys.readouterr().out
        golden = (
            Path(__file__).parent / "reports" / "golden_report.json"
        ).read_text()
        assert out == golden

    def test_report_markdown(self, capsys):
        assert main([
            "report", "--checkpoint", self.GOLDEN_JOURNAL,
            "--format", "markdown",
        ]) == 0
        assert "# Chaos run report" in capsys.readouterr().out

    def test_report_with_trace(self, capsys):
        trace = str(
            Path(__file__).parent / "telemetry" / "golden_trace.jsonl"
        )
        assert main([
            "report", "--checkpoint", self.GOLDEN_JOURNAL,
            "--trace", trace,
        ]) == 0
        assert "trace:" in capsys.readouterr().out

    def test_missing_journal_is_exit_2(self, capsys, tmp_path):
        assert main([
            "report", "--checkpoint", str(tmp_path / "nope.jsonl"),
        ]) == 2
        err = capsys.readouterr().err
        assert "unusable checkpoint" in err or "cannot read" in err

    def test_invalid_trace_is_exit_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main([
            "report", "--checkpoint", self.GOLDEN_JOURNAL,
            "--trace", str(bad),
        ]) == 2
        assert "invalid trace" in capsys.readouterr().err
