"""Tests for the terminal visualization / export helpers."""

import io
import json

import pytest

from repro.engine.latency import LatencyDistribution
from repro.errors import ReproError
from repro.viz import (
    cdf_chart,
    cdf_to_csv,
    series_to_csv,
    series_to_json,
    strip_chart,
)


@pytest.fixture
def ramp_series():
    return [(float(t), float(t)) for t in range(100)]


@pytest.fixture
def distribution():
    dist = LatencyDistribution()
    for v in range(1, 101):
        dist.add(v / 100.0)
    return dist


class TestStripChart:
    def test_dimensions(self, ramp_series):
        chart = strip_chart(ramp_series, width=40, height=8)
        lines = chart.splitlines()
        # 8 rows + separator + time axis.
        assert len(lines) == 10
        assert lines[-2] == "-" * 40

    def test_ramp_shape(self, ramp_series):
        chart = strip_chart(ramp_series, width=40, height=8)
        rows = chart.splitlines()[:8]
        # The top row has fewer filled cells than the bottom row.
        assert rows[0].count("#") < rows[-1].count("#")

    def test_title_and_label(self, ramp_series):
        chart = strip_chart(
            ramp_series, title="My Chart", y_label="rec/s"
        )
        assert chart.startswith("My Chart")
        assert "(y: rec/s)" in chart

    def test_fixed_y_max(self):
        # A series at half the pinned scale fills ~half the height.
        series = [(float(t), 50.0) for t in range(10)]
        chart = strip_chart(series, width=20, height=10, y_max=100.0)
        rows = chart.splitlines()[:10]
        filled = sum(1 for row in rows if "#" in row)
        assert 4 <= filled <= 6

    def test_empty_series(self):
        assert strip_chart([]) == "(no samples)"

    def test_too_small_rejected(self, ramp_series):
        with pytest.raises(ReproError):
            strip_chart(ramp_series, width=5, height=1)


class TestCdfChart:
    def test_renders_with_target_marker(self, distribution):
        chart = cdf_chart(distribution, target=0.5, title="CDF")
        assert chart.startswith("CDF")
        assert "|" in chart or "#" in chart

    def test_empty(self):
        assert cdf_chart(LatencyDistribution()) == "(no samples)"

    def test_monotone_fill(self, distribution):
        chart = cdf_chart(distribution, width=30, height=6)
        rows = [
            line for line in chart.splitlines() if "#" in line
        ]
        fills = [row.count("#") for row in rows]
        # Higher cumulative fractions are reached further right:
        # the top row (100%) has the fewest filled columns.
        assert fills == sorted(fills)


class TestExport:
    def test_series_to_csv(self, ramp_series):
        buffer = io.StringIO()
        series_to_csv(ramp_series[:3], buffer)
        lines = buffer.getvalue().splitlines()
        assert lines[0] == "time,value"
        assert lines[1] == "0.0,0.0"
        assert len(lines) == 4

    def test_series_to_json_roundtrip(self, ramp_series):
        data = json.loads(series_to_json(ramp_series))
        assert data[10] == [10.0, 10.0]

    def test_cdf_to_csv(self, distribution):
        buffer = io.StringIO()
        cdf_to_csv(distribution, buffer, points=10)
        lines = buffer.getvalue().splitlines()
        assert lines[0] == "latency,fraction"
        assert len(lines) > 5
        # Fractions are monotone.
        fractions = [float(line.split(",")[1]) for line in lines[1:]]
        assert fractions == sorted(fractions)
