"""Unit tests for instrumentation metrics (Eq. 1-6 of the paper)."""

import pytest

from repro.dataflow.physical import InstanceId
from repro.errors import MetricsError
from repro.metrics import (
    InstanceCounters,
    MetricsWindow,
    OperatorHealth,
    merge_windows,
)
from tests.conftest import make_window


def counters(pulled, pushed, useful, observed=10.0):
    return InstanceCounters(
        records_pulled=pulled,
        records_pushed=pushed,
        useful_time=useful,
        waiting_time=observed - useful,
        observed_time=observed,
    )


class TestInstanceCounters:
    def test_true_rates_use_useful_time(self):
        c = counters(pulled=100.0, pushed=50.0, useful=2.0)
        assert c.true_processing_rate == pytest.approx(50.0)  # Eq. 1
        assert c.true_output_rate == pytest.approx(25.0)      # Eq. 2

    def test_observed_rates_use_window(self):
        c = counters(pulled=100.0, pushed=50.0, useful=2.0)
        assert c.observed_processing_rate == pytest.approx(10.0)  # Eq. 3
        assert c.observed_output_rate == pytest.approx(5.0)       # Eq. 4

    def test_observed_never_exceeds_true(self):
        # 0 <= Wu <= W implies observed <= true (paper section 3.2).
        c = counters(pulled=100.0, pushed=80.0, useful=3.7)
        assert c.observed_processing_rate <= c.true_processing_rate
        assert c.observed_output_rate <= c.true_output_rate

    def test_true_rate_undefined_without_useful_time(self):
        c = counters(pulled=0.0, pushed=0.0, useful=0.0)
        assert c.true_processing_rate is None
        assert c.true_output_rate is None

    def test_observed_rate_undefined_without_window(self):
        c = InstanceCounters(0.0, 0.0, 0.0, 0.0, 0.0)
        assert c.observed_processing_rate is None

    def test_cpu_utilization(self):
        assert counters(1, 1, useful=2.5).cpu_utilization == pytest.approx(
            0.25
        )
        assert InstanceCounters(0, 0, 0, 0, 0).cpu_utilization == 0.0

    def test_useful_cannot_exceed_window(self):
        with pytest.raises(MetricsError):
            InstanceCounters(
                records_pulled=1.0,
                records_pushed=1.0,
                useful_time=11.0,
                waiting_time=0.0,
                observed_time=10.0,
            )

    def test_negative_counters_rejected(self):
        with pytest.raises(MetricsError):
            InstanceCounters(-1.0, 0.0, 0.0, 0.0, 1.0)
        with pytest.raises(MetricsError):
            InstanceCounters(0.0, 0.0, -1.0, 0.0, 1.0)

    def test_merged_accumulates(self):
        a = counters(100.0, 50.0, 2.0)
        b = counters(200.0, 100.0, 4.0)
        merged = a.merged(b)
        assert merged.records_pulled == 300.0
        assert merged.useful_time == 6.0
        assert merged.observed_time == 20.0

    def test_zero_factory(self):
        z = InstanceCounters.zero(observed_time=5.0)
        assert z.records_pulled == 0.0
        assert z.observed_time == 5.0


class TestOperatorHealth:
    def test_validation(self):
        with pytest.raises(MetricsError):
            OperatorHealth(
                queue_fill=-0.1, backpressure=False, pending_records=0.0
            )
        with pytest.raises(MetricsError):
            OperatorHealth(
                queue_fill=0.5, backpressure=False, pending_records=-1.0
            )
        with pytest.raises(MetricsError):
            OperatorHealth(
                queue_fill=0.5,
                backpressure=False,
                pending_records=0.0,
                backpressure_fraction=1.5,
            )


class TestMetricsWindow:
    def test_aggregated_true_rates_sum_instances(self):
        # Eq. 5/6: aggregated rate is the sum over instances.
        window = make_window({
            ("op", 0): (100.0, 200.0, 1.0),
            ("op", 1): (300.0, 600.0, 2.0),
        })
        assert window.aggregated_true_processing_rate(
            "op"
        ) == pytest.approx(250.0)
        assert window.aggregated_true_output_rate(
            "op"
        ) == pytest.approx(500.0)

    def test_starved_instance_contributes_sibling_mean(self):
        # An instance that never ran has the same capacity as its
        # siblings; aggregation must not underestimate it.
        window = make_window({
            ("op", 0): (100.0, 100.0, 1.0),
            ("op", 1): (0.0, 0.0, 0.0),
        })
        assert window.aggregated_true_processing_rate(
            "op"
        ) == pytest.approx(200.0)

    def test_fully_idle_operator_is_unknown(self):
        window = make_window({
            ("op", 0): (0.0, 0.0, 0.0),
        })
        assert window.aggregated_true_processing_rate("op") is None

    def test_parallelism_of(self):
        window = make_window({
            ("op", 0): (1.0, 1.0, 0.1),
            ("op", 1): (1.0, 1.0, 0.1),
            ("other", 0): (1.0, 1.0, 0.1),
        })
        assert window.parallelism_of("op") == 2
        with pytest.raises(MetricsError):
            window.parallelism_of("ghost")

    def test_observed_rates(self):
        window = make_window({
            ("op", 0): (100.0, 50.0, 1.0),
            ("op", 1): (100.0, 50.0, 1.0),
        })
        assert window.observed_processing_rate("op") == pytest.approx(20.0)
        assert window.observed_output_rate("op") == pytest.approx(10.0)

    def test_selectivity(self):
        window = make_window({
            ("op", 0): (100.0, 2000.0, 1.0),
        })
        assert window.selectivity("op") == pytest.approx(20.0)

    def test_selectivity_undefined_without_input(self):
        window = make_window({("op", 0): (0.0, 0.0, 0.0)})
        assert window.selectivity("op") is None

    def test_cpu_utilization_mean(self):
        window = make_window({
            ("op", 0): (1.0, 1.0, 10.0),
            ("op", 1): (1.0, 1.0, 5.0),
        })
        assert window.cpu_utilization("op") == pytest.approx(0.75)

    def test_instance_imbalance_balanced(self):
        window = make_window({
            ("op", 0): (100.0, 0.0, 1.0),
            ("op", 1): (100.0, 0.0, 1.0),
        })
        assert window.instance_imbalance("op") == pytest.approx(1.0)

    def test_instance_imbalance_hot_instance(self):
        window = make_window({
            ("op", 0): (300.0, 0.0, 1.0),
            ("op", 1): (100.0, 0.0, 1.0),
        })
        assert window.instance_imbalance("op") == pytest.approx(1.5)

    def test_utilization_imbalance(self):
        window = make_window({
            ("op", 0): (1.0, 0.0, 10.0),   # saturated
            ("op", 1): (1.0, 0.0, 5.0),    # half idle
        })
        peak, ratio = window.utilization_imbalance("op")
        assert peak == pytest.approx(1.0)
        assert ratio == pytest.approx(1.0 / 0.75)

    def test_operators_listing(self):
        window = make_window({
            ("b", 0): (1.0, 1.0, 0.1),
            ("a", 0): (1.0, 1.0, 0.1),
        })
        assert window.operators() == ("a", "b")

    def test_invalid_bounds(self):
        with pytest.raises(MetricsError):
            MetricsWindow(start=10.0, end=5.0, instances={})
        with pytest.raises(MetricsError):
            MetricsWindow(
                start=0.0, end=1.0, instances={}, outage_fraction=2.0
            )


class TestMergeWindows:
    def test_merge_sums_counters(self):
        w1 = make_window({("op", 0): (100.0, 50.0, 1.0)}, start=0, end=10)
        w2 = make_window(
            {("op", 0): (200.0, 100.0, 2.0)}, start=10, end=20
        )
        merged = merge_windows([w1, w2])
        iid = InstanceId("op", 0)
        assert merged.instances[iid].records_pulled == 300.0
        assert merged.duration == 20.0

    def test_merge_orders_by_start(self):
        w1 = make_window({("op", 0): (1.0, 1.0, 0.1)}, start=10, end=20)
        w2 = make_window({("op", 0): (1.0, 1.0, 0.1)}, start=0, end=10)
        merged = merge_windows([w1, w2])
        assert merged.start == 0.0
        assert merged.end == 20.0

    def test_merge_empty_rejected(self):
        with pytest.raises(MetricsError):
            merge_windows([])
