"""Unit tests for report formatting."""

import pytest

from repro.engine.latency import LatencyDistribution
from repro.errors import ReproError
from repro.experiments.report import (
    cdf_table,
    format_rate,
    format_steps,
    format_table,
    latency_summary,
)


class TestFormatTable:
    def test_alignment_and_header_separator(self):
        text = format_table(
            ("name", "value"),
            [("a", 1), ("long-name", 22)],
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "-+-" in lines[1]
        # All lines have the same width.
        assert len({len(line) for line in lines}) == 1

    def test_title(self):
        text = format_table(("x",), [("1",)], title="My Table")
        assert text.startswith("My Table")

    def test_mismatched_row_rejected(self):
        with pytest.raises(ReproError):
            format_table(("a", "b"), [("only-one",)])


class TestFormatters:
    def test_format_rate(self):
        assert format_rate(2_000_000.0) == "2.00M"
        assert format_rate(500_000.0) == "500K"
        assert format_rate(12.3) == "12.3"

    def test_format_steps(self):
        assert format_steps([12, 16]) == "12→16"
        assert format_steps([]) == "stable"

    def test_latency_summary(self):
        dist = LatencyDistribution()
        for v in (0.1, 0.2, 0.3):
            dist.add(v)
        text = latency_summary(dist)
        assert "p50=" in text and "p99=" in text

    def test_latency_summary_empty(self):
        assert latency_summary(LatencyDistribution()) == "no samples"

    def test_cdf_table(self):
        dist = LatencyDistribution()
        for v in range(10):
            dist.add(v / 100.0)
        text = cdf_table(dist, points=5)
        assert "latency (ms)" in text
        assert "100%" in text
