"""Unit tests for the experiment harness utilities."""

import pytest

from repro.core.manager import DS2Controller, ManagerConfig
from repro.core.policy import DS2Policy
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig
from repro.errors import ReproError
from repro.experiments.harness import TimeSeries, run_controlled


class TestTimeSeries:
    def test_append_and_iterate(self):
        series = TimeSeries()
        series.append(0.0, 1.0)
        series.append(1.0, 3.0)
        assert list(series) == [(0.0, 1.0), (1.0, 3.0)]
        assert len(series) == 2

    def test_mean_and_last(self):
        series = TimeSeries(times=[0, 1, 2], values=[1.0, 2.0, 3.0])
        assert series.mean() == 2.0
        assert series.last() == 3.0

    def test_window_mean(self):
        series = TimeSeries(
            times=[0, 1, 2, 3], values=[10.0, 20.0, 30.0, 40.0]
        )
        assert series.window_mean(1.0, 3.0) == 25.0

    def test_empty_series_raises(self):
        with pytest.raises(ReproError):
            TimeSeries().mean()
        with pytest.raises(ReproError):
            TimeSeries().last()
        with pytest.raises(ReproError):
            TimeSeries(times=[0], values=[1.0]).window_mean(5.0, 6.0)


class TestRunControlled:
    def test_captures_series_and_final_state(self, chain_graph):
        controller = DS2Controller(
            DS2Policy(chain_graph),
            ManagerConfig(warmup_intervals=1, activation_intervals=1),
        )
        run = run_controlled(
            graph=chain_graph,
            runtime=FlinkRuntime(),
            initial_parallelism={"worker": 1},
            controller=controller,
            policy_interval=10.0,
            duration=200.0,
            engine_config=EngineConfig(
                tick=0.1, track_record_latency=False
            ),
            sample_every=2,
        )
        assert run.final_parallelism["worker"] == 2
        assert run.scaling_steps == 1
        assert run.main_parallelism_steps("worker") == [2]
        assert len(run.source_rate["src"]) > 100
        assert len(run.parallelism["worker"]) > 100
        # Steady state reaches the full source rate.
        assert run.achieved_source_rate("src") == pytest.approx(
            1000.0, rel=0.05
        )

    def test_record_latency_captured_when_enabled(self, chain_graph):
        controller = DS2Controller(DS2Policy(chain_graph))
        run = run_controlled(
            graph=chain_graph,
            runtime=FlinkRuntime(),
            initial_parallelism={"worker": 2},
            controller=controller,
            policy_interval=10.0,
            duration=20.0,
            engine_config=EngineConfig(
                tick=0.1, track_record_latency=True
            ),
        )
        assert run.record_latency is not None
        assert len(run.record_latency) > 0
        assert run.epoch_latency is None
