"""Unit and integration tests for SASO scoring."""

import pytest

from repro.core.controller import LoopResult, ScalingEvent
from repro.errors import ReproError
from repro.experiments.saso import SasoReport, score_operator, score_run


def result_with(events):
    result = LoopResult()
    for time, applied in events:
        result.events.append(
            ScalingEvent(
                time=time,
                requested=dict(applied),
                applied=dict(applied),
                outage_seconds=0.0,
            )
        )
    return result


class TestScoreOperator:
    def test_monotone_scale_up(self):
        result = result_with([
            (10.0, {"op": 4}),
            (40.0, {"op": 7}),
            (70.0, {"op": 8}),
        ])
        report = score_operator(result, "op", 1, optimal_parallelism=8)
        assert report.total_actions == 3
        assert report.stable
        assert report.accurate
        assert not report.overshot
        assert report.settling_time == 70.0

    def test_oscillation_detected(self):
        result = result_with([
            (10.0, {"op": 8}),
            (40.0, {"op": 4}),
            (70.0, {"op": 8}),
            (100.0, {"op": 4}),
        ])
        report = score_operator(result, "op", 6)
        assert report.direction_changes == 3
        assert not report.stable

    def test_overshoot_detected(self):
        result = result_with([
            (10.0, {"op": 12}),
            (40.0, {"op": 8}),
        ])
        report = score_operator(result, "op", 1, optimal_parallelism=8)
        assert report.overshot
        assert report.overshoot_factor == pytest.approx(1.5)
        # One reversal: up then down.
        assert report.direction_changes == 1

    def test_no_actions(self):
        report = score_operator(LoopResult(), "op", 5,
                                optimal_parallelism=5)
        assert report.total_actions == 0
        assert report.settling_time == 0.0
        assert report.stable and report.accurate

    def test_repeated_same_value_not_counted(self):
        result = result_with([
            (10.0, {"op": 4}),
            (40.0, {"op": 4}),
        ])
        report = score_operator(result, "op", 1)
        assert report.total_actions == 1

    def test_accuracy_requires_optimum(self):
        report = score_operator(LoopResult(), "op", 5)
        with pytest.raises(ReproError):
            report.accurate


class TestScoreRun:
    def test_scores_touched_operators(self):
        result = result_with([
            (10.0, {"a": 2, "b": 3}),
        ])
        reports = score_run(
            result, {"a": 1, "b": 1}, {"a": 2, "b": 3}
        )
        assert set(reports) == {"a", "b"}
        assert all(r.accurate for r in reports.values())

    def test_unknown_operator_rejected(self):
        result = result_with([(10.0, {"ghost": 2})])
        with pytest.raises(ReproError):
            score_run(result, {"a": 1}, operators=("ghost",))


@pytest.mark.slow
class TestSasoEndToEnd:
    def test_ds2_satisfies_all_four_properties(self):
        """The paper's framing, checked literally: DS2 on the Heron
        wordcount is stable, accurate, fast, and never overshoots."""
        from repro.experiments.comparison import run_ds2
        from repro.workloads.wordcount import COUNT, FLATMAP

        outcome = run_ds2(duration=420.0)
        reports = score_run(
            outcome.run.loop_result,
            {FLATMAP: 1, COUNT: 1},
            {FLATMAP: 10, COUNT: 20},
        )
        for report in reports.values():
            assert report.stable
            assert report.accurate
            assert not report.overshot
            assert report.settling_time <= 120.0

    def test_dhalion_violates_accuracy(self):
        from repro.experiments.comparison import run_dhalion
        from repro.workloads.wordcount import COUNT, FLATMAP

        outcome = run_dhalion(duration=3600.0)
        reports = score_run(
            outcome.run.loop_result,
            {FLATMAP: 1, COUNT: 1},
            {FLATMAP: 10, COUNT: 20},
        )
        # Over-provisioned end state on at least one operator, and
        # settling took an order of magnitude longer than DS2.
        assert not all(r.accurate for r in reports.values())
        assert max(r.settling_time for r in reports.values()) > 1000.0
