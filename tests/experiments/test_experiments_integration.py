"""Scaled-down integration runs of every paper experiment.

Each test runs the same harness the benchmarks use, at reduced duration,
and asserts the *shape* of the paper's result: who converges in how many
steps, who over-provisions, where the latency knees sit.
"""

import pytest

from repro.experiments.accuracy import (
    converged_flink_plan,
    measure_fixed_flink,
    measure_fixed_timely,
)
from repro.experiments.comparison import run_dhalion, run_ds2
from repro.experiments.convergence import (
    run_flink_convergence_cell,
    run_timely_convergence_cell,
)
from repro.experiments.dynamic import run_dynamic_scaling
from repro.experiments.overhead import (
    measure_flink_overhead,
    measure_timely_overhead,
)
from repro.experiments.skew_experiment import run_skew_experiment
from repro.workloads.nexmark import get_query


@pytest.mark.slow
class TestComparison:
    def test_ds2_single_step_to_paper_optimum(self):
        result = run_ds2(duration=300.0)
        assert result.steps == 1
        assert result.final_flatmap == 10
        assert result.final_count == 20
        # Sustains at least the target (above it while the backlog
        # accumulated during the redeploy outage drains).
        assert result.achieved_rate >= result.target_rate * 0.98

    def test_dhalion_many_steps_overprovisioned(self):
        result = run_dhalion(duration=3600.0)
        assert result.steps >= 5
        assert result.overprovisioning_factor > 1.2
        # Converges eventually (source reaches the target).
        assert result.achieved_rate >= result.target_rate * 0.98
        # Orders of magnitude slower than DS2's single minute.
        assert result.convergence_time > 600.0


@pytest.mark.slow
class TestDynamic:
    def test_two_phase_scaling(self):
        result = run_dynamic_scaling(phase_seconds=300.0, tick=0.25)
        # Phase 1 scales up within three steps.
        assert 1 <= result.phase1_steps <= 3
        assert result.phase1_final["flatmap"] > 10
        # Phase 2 scales down within three steps.
        assert 1 <= result.phase2_steps <= 3
        assert result.final["flatmap"] < result.phase1_final["flatmap"]
        assert result.final["count"] < result.phase1_final["count"]


@pytest.mark.slow
class TestConvergence:
    @pytest.mark.parametrize("initial", [8, 28])
    def test_q1_converges_to_paper_value(self, initial):
        cell = run_flink_convergence_cell(
            get_query("Q1"), initial, duration=1200.0, tick=0.25
        )
        assert cell.final == 16
        assert cell.step_count <= 3

    def test_q8_from_16(self):
        cell = run_flink_convergence_cell(
            get_query("Q8"), 16, duration=1200.0, tick=0.25
        )
        assert cell.final == 10
        assert cell.step_count <= 3

    def test_timely_q5_lands_on_four_workers(self):
        cell = run_timely_convergence_cell(
            get_query("Q5"), 2, duration=600.0, tick=0.25
        )
        assert cell.final == 4
        assert cell.step_count <= 3


@pytest.mark.slow
class TestAccuracy:
    def test_flink_under_and_over_provisioning(self):
        query = get_query("Q2")
        base = converged_flink_plan(query, duration=900.0, tick=0.25)
        indicated = base[query.main_operator]
        under = measure_fixed_flink(
            query, base, indicated - 4, duration=150.0, tick=0.25
        )
        at = measure_fixed_flink(
            query, base, indicated, duration=150.0, tick=0.25
        )
        over = measure_fixed_flink(
            query, base, indicated + 4, duration=150.0, tick=0.25
        )
        # Below the optimum: backpressure and a depressed source rate.
        assert under.backpressured
        assert not under.sustains_target
        # At the optimum: full rate, no backpressure.
        assert at.sustains_target
        assert not at.backpressured
        # Above: no meaningful latency win.
        assert at.sustains_target and over.sustains_target
        assert over.latency.median() <= at.latency.median() * 1.5
        # Under-provisioning explodes latency.
        assert under.latency.median() > at.latency.median() * 10

    def test_timely_epoch_knee_at_four_workers(self):
        query = get_query("Q3")
        starved = measure_fixed_timely(query, 2, duration=60.0)
        indicated = measure_fixed_timely(query, 4, duration=60.0)
        assert starved.fraction_above_target > 0.8
        assert indicated.fraction_above_target < 0.1


@pytest.mark.slow
class TestOverhead:
    def test_flink_overhead_within_paper_envelope(self):
        query = get_query("Q1")
        base = converged_flink_plan(query, duration=900.0, tick=0.25)
        point = measure_flink_overhead(
            query, duration=150.0, base_plan=base
        )
        assert point.instrumented_median >= point.vanilla_median
        # Paper: at most 13% on Flink. Allow headroom for queueing
        # amplification in the simulator.
        assert point.relative_overhead < 0.30

    def test_timely_overhead_within_paper_envelope(self):
        point = measure_timely_overhead(get_query("Q3"), duration=60.0)
        assert point.instrumented_median >= point.vanilla_median * 0.9


@pytest.mark.slow
class TestSkew:
    def test_paper_section_423_behaviour(self):
        results = run_skew_experiment(
            skew_levels=(0.5,), duration=400.0
        )
        result = results[0]
        assert result.steps == 2
        assert result.converged_to_noskew_optimum
        assert not result.meets_target
        assert result.frozen
