"""Fast unit tests of the accuracy/overhead harness plumbing, using a
miniature query instead of the full-scale Nexmark calibrations."""

import pytest

from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    map_operator,
    sink,
    source,
)
from repro.errors import ReproError
from repro.experiments.accuracy import (
    measure_fixed_flink,
    measure_fixed_timely,
)
from repro.workloads.nexmark.queries import NexmarkQuery


def tiny_builder(rates, overhead, target):
    """A 3-operator pipeline whose optimum is ~``target`` instances."""
    rate = rates["bids"]
    cost = (target) / (rate * (1 + overhead))
    return LogicalGraph(
        [
            source("bids", rate=RateSchedule.constant(rate)),
            map_operator("worker", costs=CostModel(processing_cost=cost)),
            sink("sink"),
        ],
        [Edge("bids", "worker"), Edge("worker", "sink")],
    )


@pytest.fixture
def tiny_query():
    return NexmarkQuery(
        name="QT",
        description="tiny test query",
        main_operator="worker",
        flink_rates={"bids": 10_000.0},
        timely_rates={"bids": 10_000.0},
        indicated_flink=4,
        indicated_timely=4,
        _flink_builder=lambda rates: tiny_builder(rates, 0.08, 3.5),
        _timely_builder=lambda rates: tiny_builder(rates, 0.15, 3.5),
    )


class TestMeasureFixedFlink:
    def test_point_fields(self, tiny_query):
        base = {"bids": 1, "worker": 4, "sink": 1}
        point = measure_fixed_flink(
            tiny_query, base, 4, duration=30.0, tick=0.1
        )
        assert point.query == "QT"
        assert point.main_parallelism == 4
        assert point.is_indicated
        assert point.target_rate == pytest.approx(10_000.0)
        assert point.sustains_target
        assert len(point.latency) > 0

    def test_underprovisioned_point(self, tiny_query):
        base = {"bids": 1, "worker": 4, "sink": 1}
        point = measure_fixed_flink(
            tiny_query, base, 2, duration=30.0, tick=0.1
        )
        assert not point.is_indicated
        assert not point.sustains_target
        assert point.backpressured

    def test_parallelism_floor(self, tiny_query):
        base = {"bids": 1, "worker": 4, "sink": 1}
        point = measure_fixed_flink(
            tiny_query, base, 0, duration=5.0, tick=0.1
        )
        assert point.main_parallelism == 1


class TestMeasureFixedTimely:
    def test_keeps_up_at_indicated(self, tiny_query):
        point = measure_fixed_timely(
            tiny_query, 4, duration=30.0, tick=0.1
        )
        assert point.is_indicated
        assert point.fraction_above_target < 0.1

    def test_starves_below(self, tiny_query):
        point = measure_fixed_timely(
            tiny_query, 2, duration=30.0, tick=0.1
        )
        assert point.fraction_above_target > 0.5

    def test_invalid_workers(self, tiny_query):
        with pytest.raises(ReproError):
            measure_fixed_timely(tiny_query, 0)
