"""Unit tests for the runtime window state machine."""

import pytest

from repro.dataflow.operators import WindowKind, WindowSpec
from repro.dataflow.windowing import WindowState
from repro.errors import EngineError


def tumbling(length=10.0, assign_cost=1e-6):
    return WindowState(
        spec=WindowSpec(
            kind=WindowKind.TUMBLING,
            length=length,
            assign_cost=assign_cost,
        )
    )


def sliding(length=10.0, slide=2.0):
    return WindowState(
        spec=WindowSpec(
            kind=WindowKind.SLIDING, length=length, slide=slide
        )
    )


def session(length=10.0, gap=2.0):
    return WindowState(
        spec=WindowSpec(
            kind=WindowKind.SESSION, length=length, gap=gap,
            staggered=True,
        )
    )


class TestAssign:
    def test_assign_buffers_records(self):
        state = tumbling()
        state.assign(100.0)
        assert state.buffered == 100.0

    def test_assign_returns_cost(self):
        state = tumbling(assign_cost=2e-6)
        assert state.assign(100.0) == pytest.approx(2e-4)

    def test_sliding_replicates(self):
        state = sliding(length=10.0, slide=2.0)
        state.assign(100.0)
        assert state.buffered == pytest.approx(500.0)

    def test_negative_rejected(self):
        with pytest.raises(EngineError):
            tumbling().assign(-1.0)


class TestSynchronizedFire:
    def test_no_fire_before_boundary(self):
        state = tumbling(length=10.0)
        state.assign(50.0)
        released, fires = state.maybe_fire(9.9)
        assert released == 0.0 and fires == 0
        assert state.buffered == 50.0

    def test_fire_at_boundary_releases_everything(self):
        state = tumbling(length=10.0)
        state.assign(50.0)
        released, fires = state.maybe_fire(10.0)
        assert released == 50.0 and fires == 1
        assert state.buffered == 0.0

    def test_multiple_boundaries_in_one_tick(self):
        state = tumbling(length=1.0)
        state.assign(30.0)
        released, fires = state.maybe_fire(3.5)
        assert released == 30.0
        assert fires == 3

    def test_fire_clock_advances(self):
        state = tumbling(length=10.0)
        state.maybe_fire(10.0)
        assert state.seconds_until_fire(10.0) == pytest.approx(10.0)
        assert state.seconds_until_fire(15.0) == pytest.approx(5.0)

    def test_seconds_until_fire_never_negative(self):
        state = tumbling(length=10.0)
        assert state.seconds_until_fire(100.0) == 0.0


class TestStaggeredFire:
    def test_releases_proportional_fraction(self):
        state = session(length=10.0, gap=2.0)  # interval 12s
        state.assign(1200.0)
        released, _ = state.maybe_fire(3.0)
        assert released == pytest.approx(1200.0 * 3.0 / 12.0)

    def test_converges_to_steady_buffer(self):
        state = session(length=10.0, gap=2.0)
        rate = 100.0
        dt = 0.5
        now = 0.0
        for _ in range(400):
            now += dt
            state.assign(rate * dt)
            state.maybe_fire(now)
        # Steady-state holding: about one fire interval of records.
        assert state.buffered == pytest.approx(
            rate * 12.0, rel=0.05
        )

    def test_elapsed_capped_at_full_release(self):
        state = session(length=10.0, gap=2.0)
        state.assign(100.0)
        released, _ = state.maybe_fire(1000.0)
        assert released == pytest.approx(100.0)


class TestReset:
    def test_reset_aligns_fire_clock(self):
        state = tumbling(length=10.0)
        state.assign(10.0)
        state.reset(25.0)
        # Next boundary after t=25 is t=30.
        assert state.next_fire == pytest.approx(30.0)
        # Buffered records survive (they are part of the savepoint).
        assert state.buffered == 10.0

    def test_reset_staggered_resets_clock(self):
        state = session()
        state.assign(100.0)
        state.reset(50.0)
        released, _ = state.maybe_fire(50.0)
        assert released == 0.0
