"""Unit tests for physical plans, partitioning, and channels."""

import pytest

from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    OperatorSpec,
    OperatorKind,
    RateSchedule,
    map_operator,
    sink,
    source,
)
from repro.dataflow.physical import (
    Channel,
    InstanceId,
    Partitioner,
    PhysicalPlan,
    skewed_weights,
    uniform_weights,
)
from repro.errors import PlanError


class TestInstanceId:
    def test_ordering_and_str(self):
        a = InstanceId("op", 0)
        b = InstanceId("op", 1)
        assert a < b
        assert str(b) == "op[1]"

    def test_negative_index_rejected(self):
        with pytest.raises(PlanError):
            InstanceId("op", -1)


class TestWeights:
    def test_uniform_weights_sum_to_one(self):
        weights = uniform_weights(7)
        assert len(weights) == 7
        assert sum(weights) == pytest.approx(1.0)

    def test_uniform_weights_rejects_zero(self):
        with pytest.raises(PlanError):
            uniform_weights(0)

    def test_skewed_weights_hot_instance(self):
        weights = skewed_weights(5, skew=0.6)
        assert weights[0] == pytest.approx(0.6)
        assert sum(weights) == pytest.approx(1.0)
        assert all(w == pytest.approx(0.1) for w in weights[1:])

    def test_skew_below_uniform_clamps_to_uniform_share(self):
        weights = skewed_weights(4, skew=0.1)
        assert weights[0] == pytest.approx(0.25)
        assert sum(weights) == pytest.approx(1.0)

    def test_skewed_single_instance(self):
        assert skewed_weights(1, skew=0.7) == (1.0,)

    def test_skew_range_validated(self):
        with pytest.raises(PlanError):
            skewed_weights(3, skew=1.5)


class TestPartitioner:
    def test_default_is_uniform(self):
        partitioner = Partitioner()
        assert partitioner.weights("op", 4) == uniform_weights(4)
        assert partitioner.skew_for("op") == 0.0

    def test_configured_skew(self):
        partitioner = Partitioner({"hot": 0.5})
        weights = partitioner.weights("hot", 4)
        assert weights[0] == pytest.approx(0.5)
        assert partitioner.weights("cold", 4) == uniform_weights(4)

    def test_invalid_skew_rejected(self):
        with pytest.raises(PlanError):
            Partitioner({"op": 2.0})


class TestChannel:
    def test_weight_validated(self):
        with pytest.raises(PlanError):
            Channel(
                upstream=InstanceId("a", 0),
                downstream=InstanceId("b", 0),
                weight=1.5,
            )


class TestPhysicalPlan:
    def test_defaults_to_parallelism_one(self, chain_graph):
        plan = PhysicalPlan(chain_graph, {})
        assert plan.parallelism == {"src": 1, "worker": 1, "snk": 1}

    def test_parallelism_must_be_positive(self, chain_graph):
        with pytest.raises(PlanError):
            PhysicalPlan(chain_graph, {"worker": 0})

    def test_unknown_operator_rejected(self, chain_graph):
        with pytest.raises(PlanError, match="unknown"):
            PhysicalPlan(chain_graph, {"ghost": 2})

    def test_slot_limit_enforced(self, chain_graph):
        with pytest.raises(PlanError, match="slot limit"):
            PhysicalPlan(chain_graph, {"worker": 40}, max_parallelism=36)

    def test_non_data_parallel_pinned(self):
        graph = LogicalGraph(
            [
                source("src", rate=RateSchedule.constant(10.0)),
                OperatorSpec(
                    name="solo",
                    kind=OperatorKind.MAP,
                    costs=CostModel(processing_cost=1e-6),
                    data_parallel=False,
                ),
                sink("snk"),
            ],
            [Edge("src", "solo"), Edge("solo", "snk")],
        )
        with pytest.raises(PlanError, match="not data-parallel"):
            PhysicalPlan(graph, {"solo": 2})

    def test_instances_enumeration(self, chain_plan):
        instances = chain_plan.instances("worker")
        assert instances == (
            InstanceId("worker", 0),
            InstanceId("worker", 1),
        )
        assert chain_plan.total_instances == 4
        assert len(chain_plan.all_instances()) == 4

    def test_channels_cover_all_edges(self, chain_plan):
        channels = chain_plan.channels()
        # src(1) -> worker(2): 2 channels; worker(2) -> snk(1): 2.
        assert len(channels) == 4
        worker_inputs = [
            c for c in channels if c.downstream.operator == "worker"
        ]
        assert sum(c.weight for c in worker_inputs) == pytest.approx(1.0)

    def test_with_parallelism_returns_new_plan(self, chain_plan):
        updated = chain_plan.with_parallelism({"worker": 5})
        assert updated.parallelism_of("worker") == 5
        assert chain_plan.parallelism_of("worker") == 2

    def test_with_parallelism_unknown_rejected(self, chain_plan):
        with pytest.raises(PlanError):
            chain_plan.with_parallelism({"ghost": 2})

    def test_clamped_applies_bounds(self, chain_graph):
        plan = PhysicalPlan(chain_graph, {}, max_parallelism=8)
        clamped = plan.clamped({"worker": 100})
        assert clamped.parallelism_of("worker") == 8
        clamped = plan.clamped({"worker": -3})
        assert clamped.parallelism_of("worker") == 1

    def test_equality_by_parallelism(self, chain_graph):
        a = PhysicalPlan(chain_graph, {"worker": 2})
        b = PhysicalPlan(chain_graph, {"worker": 2})
        c = PhysicalPlan(chain_graph, {"worker": 3})
        assert a == b
        assert a != c

    def test_input_weights_reflect_skew(self, chain_graph):
        plan = PhysicalPlan(
            chain_graph,
            {"worker": 4},
            partitioner=Partitioner({"worker": 0.7}),
        )
        weights = plan.input_weights("worker")
        assert weights[0] == pytest.approx(0.7)

    def test_parallelism_of_unknown_raises(self, chain_plan):
        with pytest.raises(PlanError):
            chain_plan.parallelism_of("ghost")
