"""Additional graph tests for multi-input / multi-path topologies."""

import pytest

from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    flatmap,
    join,
    map_operator,
    sink,
    source,
    tumbling_window,
)
from repro.errors import GraphError


def multi_stage_graph():
    """Two sources, a join, then a window and two sinks."""
    return LogicalGraph(
        [
            source("s1", rate=RateSchedule.constant(100.0)),
            source("s2", rate=RateSchedule.constant(50.0)),
            join("j", costs=CostModel(processing_cost=1e-6),
                 selectivity=0.5),
            tumbling_window("w", length=5.0, fire_selectivity=0.1),
            sink("k1"),
            sink("k2"),
        ],
        [
            Edge("s1", "j"),
            Edge("s2", "j"),
            Edge("j", "w"),
            Edge("w", "k1"),
            Edge("w", "k2"),
        ],
    )


class TestMultiInputTopologies:
    def test_fan_out_to_two_sinks(self):
        graph = multi_stage_graph()
        assert set(graph.downstream("w")) == {"k1", "k2"}
        assert graph.sinks() == ("k1", "k2")

    def test_expected_selectivity_per_sink(self):
        graph = multi_stage_graph()
        # Per source record of either source: join keeps 0.5, window
        # emits 0.1 per buffered record -> 0.05 at each sink; the
        # graph-level expectation sums over both sources.
        assert graph.expected_selectivity_to("k1") == pytest.approx(
            2 * 0.5 * 0.1
        )

    def test_paths_enumerate_both_sources(self):
        graph = multi_stage_graph()
        paths = graph.paths_from_sources("k1")
        starts = {path[0] for path in paths}
        assert starts == {"s1", "s2"}

    def test_window_with_two_inputs_allowed(self):
        graph = LogicalGraph(
            [
                source("a", rate=RateSchedule.constant(1.0)),
                source("b", rate=RateSchedule.constant(1.0)),
                tumbling_window("wj", length=5.0, fire_selectivity=0.1),
                sink("k"),
            ],
            [Edge("a", "wj"), Edge("b", "wj"), Edge("wj", "k")],
        )
        assert set(graph.upstream("wj")) == {"a", "b"}

    def test_three_input_join_rejected(self):
        ops = [
            source("a", rate=RateSchedule.constant(1.0)),
            source("b", rate=RateSchedule.constant(1.0)),
            source("c", rate=RateSchedule.constant(1.0)),
            join("j", costs=CostModel(processing_cost=1e-6),
                 selectivity=1.0),
            sink("k"),
        ]
        edges = [Edge("a", "j"), Edge("b", "j"), Edge("c", "j"),
                 Edge("j", "k")]
        with pytest.raises(GraphError, match="two inputs"):
            LogicalGraph(ops, edges)

    def test_long_chain_topological_order(self):
        ops = [source("s", rate=RateSchedule.constant(1.0))]
        edges = []
        previous = "s"
        for index in range(20):
            name = f"m{index}"
            ops.append(
                map_operator(name, costs=CostModel(processing_cost=1e-6))
            )
            edges.append(Edge(previous, name))
            previous = name
        ops.append(sink("k"))
        edges.append(Edge(previous, "k"))
        graph = LogicalGraph(ops, edges)
        order = graph.topological_order()
        assert order[0] == "s"
        assert order[-1] == "k"
        assert len(order) == 22
