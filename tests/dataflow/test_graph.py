"""Unit tests for logical graph construction and traversal."""

import pytest

from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    filter_operator,
    flatmap,
    join,
    map_operator,
    sink,
    source,
)
from repro.errors import GraphError


def _src(name="src", rate=100.0):
    return source(name, rate=RateSchedule.constant(rate))


def _map(name):
    return map_operator(name, costs=CostModel(processing_cost=1e-6))


class TestConstruction:
    def test_minimal_chain(self):
        graph = LogicalGraph(
            [_src(), _map("m"), sink("k")],
            [Edge("src", "m"), Edge("m", "k")],
        )
        assert len(graph) == 3
        assert "m" in graph

    def test_from_chain_builds_edges(self):
        graph = LogicalGraph.from_chain([_src(), _map("m"), sink("k")])
        assert graph.downstream("src") == ("m",)
        assert graph.downstream("m") == ("k",)

    def test_from_chain_needs_two_operators(self):
        with pytest.raises(GraphError):
            LogicalGraph.from_chain([_src()])

    def test_duplicate_names_rejected(self):
        with pytest.raises(GraphError, match="duplicate"):
            LogicalGraph(
                [_src(), _map("m"), _map("m"), sink("k")],
                [Edge("src", "m"), Edge("m", "k")],
            )

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(GraphError, match="unknown operator"):
            LogicalGraph(
                [_src(), sink("k")],
                [Edge("src", "ghost"), Edge("src", "k")],
            )

    def test_duplicate_edge_rejected(self):
        with pytest.raises(GraphError, match="duplicate edge"):
            LogicalGraph(
                [_src(), _map("m"), sink("k")],
                [Edge("src", "m"), Edge("src", "m"), Edge("m", "k")],
            )

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Edge("m", "m")

    def test_cycle_rejected(self):
        ops = [_src(), _map("a"), _map("b"), sink("k")]
        edges = [
            Edge("src", "a"),
            Edge("a", "b"),
            Edge("b", "a"),
            Edge("b", "k"),
        ]
        with pytest.raises(GraphError, match="cycle"):
            LogicalGraph(ops, edges)

    def test_source_with_incoming_edge_rejected(self):
        ops = [_src(), _src("src2"), _map("m"), sink("k")]
        edges = [
            Edge("src", "m"),
            Edge("m", "k"),
            Edge("src", "src2"),
        ]
        with pytest.raises(GraphError):
            LogicalGraph(ops, edges)

    def test_sink_with_outgoing_edge_rejected(self):
        ops = [_src(), _map("m"), sink("k")]
        edges = [Edge("src", "k"), Edge("k", "m"), Edge("m", "k")]
        with pytest.raises(GraphError):
            LogicalGraph(ops, edges)

    def test_dangling_operator_rejected(self):
        ops = [_src(), _map("m"), _map("orphan"), sink("k")]
        edges = [Edge("src", "m"), Edge("m", "k")]
        with pytest.raises(GraphError):
            LogicalGraph(ops, edges)

    def test_graph_without_source_rejected(self):
        # A map with no incoming edges is caught as a non-source with
        # no inputs.
        with pytest.raises(GraphError):
            LogicalGraph([_map("m"), sink("k")], [Edge("m", "k")])

    def test_graph_without_sink_rejected(self):
        with pytest.raises(GraphError):
            LogicalGraph([_src(), _map("m")], [Edge("src", "m")])

    def test_join_requires_exactly_two_inputs(self):
        ops = [
            _src(),
            join("j", costs=CostModel(processing_cost=1e-6),
                 selectivity=1.0),
            sink("k"),
        ]
        edges = [Edge("src", "j"), Edge("j", "k")]
        with pytest.raises(GraphError, match="two inputs"):
            LogicalGraph(ops, edges)


class TestTraversal:
    def test_topological_order_respects_edges(self, diamond_graph):
        order = diamond_graph.topological_order()
        for edge in diamond_graph.edges:
            assert order.index(edge.upstream) < order.index(
                edge.downstream
            )

    def test_sources_come_first(self, diamond_graph):
        order = diamond_graph.topological_order()
        assert order[0] == "src"

    def test_multi_source_order(self):
        ops = [
            _src("s1"),
            _src("s2"),
            join("j", costs=CostModel(processing_cost=1e-6),
                 selectivity=1.0),
            sink("k"),
        ]
        edges = [Edge("s1", "j"), Edge("s2", "j"), Edge("j", "k")]
        graph = LogicalGraph(ops, edges)
        order = graph.topological_order()
        assert set(order[:2]) == {"s1", "s2"}
        assert graph.sources() == ("s1", "s2")

    def test_upstream_downstream(self, diamond_graph):
        assert set(diamond_graph.downstream("src")) == {"left", "right"}
        assert set(diamond_graph.upstream("merge")) == {"left", "right"}
        assert diamond_graph.upstream("src") == ()
        assert diamond_graph.downstream("snk") == ()

    def test_unknown_operator_raises(self, chain_graph):
        with pytest.raises(GraphError):
            chain_graph.operator("ghost")
        with pytest.raises(GraphError):
            chain_graph.upstream("ghost")
        with pytest.raises(GraphError):
            chain_graph.downstream("ghost")

    def test_scalable_operators_excludes_sources_and_sinks(
        self, diamond_graph
    ):
        scalable = diamond_graph.scalable_operators()
        assert "src" not in scalable
        assert "snk" not in scalable
        assert set(scalable) == {"left", "right", "merge"}

    def test_adjacency_matches_edges(self, diamond_graph):
        adjacency = diamond_graph.adjacency()
        assert adjacency["src"]["left"]
        assert adjacency["src"]["right"]
        assert not adjacency["left"]["right"]
        assert not adjacency["snk"]["src"]

    def test_paths_from_sources(self, diamond_graph):
        paths = diamond_graph.paths_from_sources("snk")
        assert sorted(paths) == [
            ("src", "left", "merge", "snk"),
            ("src", "right", "merge", "snk"),
        ]

    def test_expected_selectivity_chain(self):
        ops = [
            _src(),
            flatmap("f", costs=CostModel(processing_cost=1e-6),
                    selectivity=20.0),
            filter_operator("g", costs=CostModel(processing_cost=1e-6),
                            pass_ratio=0.5),
            sink("k"),
        ]
        graph = LogicalGraph.from_chain(ops)
        # Each source record -> 20 words -> 10 pass the filter.
        assert graph.expected_selectivity_to("k") == pytest.approx(10.0)

    def test_expected_selectivity_diamond_sums_paths(
        self, diamond_graph
    ):
        # left passes 1.0, right passes 0.5, merge emits 1 per input.
        assert diamond_graph.expected_selectivity_to(
            "merge"
        ) == pytest.approx(1.5)

    def test_repr_contains_operators(self, chain_graph):
        assert "worker" in repr(chain_graph)
