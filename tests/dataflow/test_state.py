"""Unit tests for state accumulation and savepoint cost models."""

import pytest

from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    map_operator,
    sink,
    source,
)
from repro.dataflow.state import SavepointModel, StateModel
from repro.errors import EngineError


@pytest.fixture
def stateful_graph():
    return LogicalGraph(
        [
            source("src", rate=RateSchedule.constant(10.0)),
            map_operator(
                "counter",
                costs=CostModel(processing_cost=1e-6),
                state_bytes_per_record=8.0,
            ),
            sink("snk"),
        ],
        [Edge("src", "counter"), Edge("counter", "snk")],
    )


class TestStateModel:
    def test_state_grows_with_records(self, stateful_graph):
        state = StateModel(graph=stateful_graph)
        state.record_processed("counter", 1000.0)
        assert state.state_bytes("counter") == pytest.approx(8000.0)
        assert state.total_bytes == pytest.approx(8000.0)

    def test_stateless_operator_stays_at_zero(self, stateful_graph):
        state = StateModel(graph=stateful_graph)
        state.record_processed("snk", 1000.0)
        assert state.state_bytes("snk") == 0.0

    def test_state_capped(self, stateful_graph):
        state = StateModel(graph=stateful_graph, max_state_bytes=100.0)
        state.record_processed("counter", 1e9)
        assert state.state_bytes("counter") == 100.0

    def test_negative_records_rejected(self, stateful_graph):
        state = StateModel(graph=stateful_graph)
        with pytest.raises(EngineError):
            state.record_processed("counter", -1.0)

    def test_unknown_operator_rejected(self, stateful_graph):
        state = StateModel(graph=stateful_graph)
        with pytest.raises(EngineError):
            state.state_bytes("ghost")

    def test_snapshot_restore_roundtrip(self, stateful_graph):
        state = StateModel(graph=stateful_graph)
        state.record_processed("counter", 500.0)
        snapshot = state.snapshot()
        state.record_processed("counter", 500.0)
        state.restore(snapshot)
        assert state.state_bytes("counter") == pytest.approx(4000.0)

    def test_restore_validates(self, stateful_graph):
        state = StateModel(graph=stateful_graph)
        with pytest.raises(EngineError):
            state.restore({"ghost": 10.0})
        with pytest.raises(EngineError):
            state.restore({"counter": -1.0})


class TestSavepointModel:
    def test_outage_scales_with_state(self):
        model = SavepointModel(
            base_seconds=10.0,
            snapshot_bandwidth=100e6,
            redeploy_seconds=20.0,
        )
        assert model.outage_seconds(0.0) == pytest.approx(30.0)
        assert model.outage_seconds(1e9) == pytest.approx(40.0)

    def test_default_matches_paper_scale(self):
        # The paper reports 30-50 s Flink outages for wordcount jobs
        # with a few GB of state.
        model = SavepointModel()
        assert 20.0 <= model.outage_seconds(1e9) <= 60.0

    def test_instant_model_is_free(self):
        model = SavepointModel.instant()
        assert model.outage_seconds(1e12) == pytest.approx(0.0, abs=1e-5)

    def test_negative_state_rejected(self):
        with pytest.raises(EngineError):
            SavepointModel().outage_seconds(-1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(EngineError):
            SavepointModel(base_seconds=-1.0)
        with pytest.raises(EngineError):
            SavepointModel(snapshot_bandwidth=0.0)
        with pytest.raises(EngineError):
            SavepointModel(redeploy_seconds=-1.0)
