"""Unit tests for operator specs, cost models, and rate schedules."""

import math

import pytest

from repro.dataflow.operators import (
    CostModel,
    OperatorKind,
    OperatorSpec,
    RateSchedule,
    Selectivity,
    WindowKind,
    WindowSpec,
    filter_operator,
    flatmap,
    join,
    map_operator,
    session_window,
    sink,
    sliding_window,
    source,
    tumbling_window,
)
from repro.errors import GraphError


class TestCostModel:
    def test_base_cost_sums_three_activities(self):
        costs = CostModel(
            processing_cost=3e-6,
            deserialization_cost=1e-6,
            serialization_cost=2e-6,
        )
        assert costs.base_cost == pytest.approx(6e-6)

    def test_effective_cost_at_parallelism_one_is_base(self):
        costs = CostModel(processing_cost=1e-6, coordination_alpha=0.1)
        assert costs.effective_cost(1) == pytest.approx(costs.base_cost)

    def test_effective_cost_grows_with_parallelism(self):
        costs = CostModel(processing_cost=1e-6, coordination_alpha=0.02)
        assert costs.effective_cost(11) == pytest.approx(1.2e-6)

    def test_zero_alpha_means_perfect_scaling(self):
        costs = CostModel(processing_cost=1e-6)
        assert costs.effective_cost(100) == costs.effective_cost(1)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CostModel(processing_cost=-1e-6)
        with pytest.raises(ValueError):
            CostModel(processing_cost=1e-6, deserialization_cost=-1.0)
        with pytest.raises(ValueError):
            CostModel(processing_cost=1e-6, serialization_cost=-1.0)
        with pytest.raises(ValueError):
            CostModel(processing_cost=1e-6, coordination_alpha=-0.1)

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(ValueError):
            CostModel(processing_cost=1e-6).effective_cost(0)

    def test_scaled_multiplies_each_component(self):
        costs = CostModel(
            processing_cost=2e-6,
            deserialization_cost=1e-6,
            serialization_cost=1e-6,
            coordination_alpha=0.05,
        )
        doubled = costs.scaled(2.0)
        assert doubled.base_cost == pytest.approx(8e-6)
        assert doubled.coordination_alpha == 0.05

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            CostModel(processing_cost=1e-6).scaled(-1.0)


class TestSelectivity:
    def test_outputs_for(self):
        assert Selectivity(ratio=20.0).outputs_for(5.0) == 100.0

    def test_zero_ratio_allowed(self):
        assert Selectivity(ratio=0.0).outputs_for(10.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Selectivity(ratio=-0.1)


class TestRateSchedule:
    def test_constant(self):
        schedule = RateSchedule.constant(500.0)
        assert schedule.rate_at(0.0) == 500.0
        assert schedule.rate_at(1e6) == 500.0
        assert schedule.max_rate == 500.0

    def test_phases(self):
        schedule = RateSchedule.phases([(0.0, 100.0), (60.0, 50.0)])
        assert schedule.rate_at(0.0) == 100.0
        assert schedule.rate_at(59.9) == 100.0
        assert schedule.rate_at(60.0) == 50.0
        assert schedule.rate_at(120.0) == 50.0
        assert schedule.max_rate == 100.0

    def test_three_phases(self):
        schedule = RateSchedule.phases(
            [(0.0, 1.0), (10.0, 3.0), (20.0, 2.0)]
        )
        assert schedule.rate_at(15.0) == 3.0
        assert schedule.rate_at(25.0) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RateSchedule(steps=())

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            RateSchedule(steps=((1.0, 100.0),))

    def test_steps_must_increase(self):
        with pytest.raises(ValueError):
            RateSchedule(steps=((0.0, 1.0), (0.0, 2.0)))
        with pytest.raises(ValueError):
            RateSchedule(steps=((0.0, 1.0), (5.0, 2.0), (3.0, 1.0)))

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            RateSchedule(steps=((0.0, -5.0),))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            RateSchedule.constant(1.0).rate_at(-1.0)


class TestWindowSpec:
    def test_tumbling_fire_interval_is_length(self):
        spec = WindowSpec(kind=WindowKind.TUMBLING, length=10.0)
        assert spec.fire_interval == 10.0
        assert spec.replication == 1.0

    def test_sliding_fire_interval_is_slide(self):
        spec = WindowSpec(
            kind=WindowKind.SLIDING, length=10.0, slide=2.0
        )
        assert spec.fire_interval == 2.0
        assert spec.replication == 5.0

    def test_session_fire_interval_is_length_plus_gap(self):
        spec = WindowSpec(
            kind=WindowKind.SESSION, length=10.0, gap=2.0
        )
        assert spec.fire_interval == 12.0
        assert spec.replication == 1.0

    def test_sliding_requires_slide(self):
        with pytest.raises(ValueError):
            WindowSpec(kind=WindowKind.SLIDING, length=10.0)

    def test_slide_cannot_exceed_length(self):
        with pytest.raises(ValueError):
            WindowSpec(kind=WindowKind.SLIDING, length=5.0, slide=6.0)

    def test_session_requires_gap(self):
        with pytest.raises(ValueError):
            WindowSpec(kind=WindowKind.SESSION, length=10.0)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            WindowSpec(
                kind=WindowKind.TUMBLING, length=1.0, assign_cost=-1.0
            )
        with pytest.raises(ValueError):
            WindowSpec(
                kind=WindowKind.TUMBLING, length=1.0, fire_cost=-1.0
            )

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValueError):
            WindowSpec(kind=WindowKind.TUMBLING, length=0.0)


class TestOperatorSpec:
    def test_source_requires_rate(self):
        with pytest.raises(GraphError):
            OperatorSpec(name="s", kind=OperatorKind.SOURCE)

    def test_non_source_rejects_rate(self):
        with pytest.raises(GraphError):
            OperatorSpec(
                name="m",
                kind=OperatorKind.MAP,
                rate=RateSchedule.constant(1.0),
            )

    def test_window_kind_requires_window_spec(self):
        with pytest.raises(GraphError):
            OperatorSpec(name="w", kind=OperatorKind.WINDOW)

    def test_non_window_rejects_window_spec(self):
        with pytest.raises(GraphError):
            OperatorSpec(
                name="m",
                kind=OperatorKind.MAP,
                window=WindowSpec(kind=WindowKind.TUMBLING, length=1.0),
            )

    def test_empty_name_rejected(self):
        with pytest.raises(GraphError):
            OperatorSpec(name="", kind=OperatorKind.SINK)

    def test_invalid_rate_limit_rejected(self):
        with pytest.raises(GraphError):
            map_operator(
                "m", costs=CostModel(processing_cost=1e-6), rate_limit=0.0
            )

    def test_per_record_cost_plain(self):
        spec = map_operator("m", costs=CostModel(processing_cost=2e-6))
        assert spec.per_record_cost() == pytest.approx(2e-6)

    def test_per_record_cost_rate_limited(self):
        # A 100 records/s limit dominates a cheap CPU cost.
        spec = map_operator(
            "m", costs=CostModel(processing_cost=1e-6), rate_limit=100.0
        )
        assert spec.per_record_cost() == pytest.approx(0.01)

    def test_per_record_cost_window_amortizes_fires(self):
        spec = sliding_window(
            "w",
            length=10.0,
            slide=2.0,
            fire_selectivity=0.01,
            assign_cost=1e-6,
            fire_cost=2e-6,
        )
        # replication 5: each record is assigned and eventually fired
        # five times.
        assert spec.per_record_cost() == pytest.approx(5 * 3e-6)

    def test_long_run_selectivity_window(self):
        spec = sliding_window(
            "w", length=10.0, slide=2.0, fire_selectivity=0.01
        )
        assert spec.long_run_selectivity == pytest.approx(0.05)

    def test_long_run_selectivity_plain(self):
        spec = flatmap(
            "f", costs=CostModel(processing_cost=1e-6), selectivity=20.0
        )
        assert spec.long_run_selectivity == 20.0


class TestFactories:
    def test_source_factory(self):
        spec = source("s", rate=RateSchedule.constant(10.0))
        assert spec.is_source and not spec.is_sink

    def test_sink_factory_default_is_cheap(self):
        spec = sink("k")
        assert spec.is_sink
        assert spec.costs.base_cost <= 1e-8
        assert spec.selectivity.ratio == 0.0

    def test_filter_requires_valid_pass_ratio(self):
        with pytest.raises(GraphError):
            filter_operator(
                "f", costs=CostModel(processing_cost=1e-6), pass_ratio=1.5
            )

    def test_join_factory(self):
        spec = join(
            "j", costs=CostModel(processing_cost=1e-6), selectivity=0.1
        )
        assert spec.kind is OperatorKind.JOIN
        assert spec.state_bytes_per_record > 0

    def test_tumbling_window_factory(self):
        spec = tumbling_window("w", length=5.0, fire_selectivity=0.1)
        assert spec.window is not None
        assert spec.window.kind is WindowKind.TUMBLING
        assert not spec.window.staggered

    def test_session_window_is_staggered(self):
        spec = session_window(
            "w", length=10.0, gap=2.0, fire_selectivity=0.1
        )
        assert spec.window is not None
        assert spec.window.staggered
