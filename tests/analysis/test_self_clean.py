"""Tier-1 enforcement: the shipped tree lints clean.

This is the teeth behind CONTRIBUTING.md's determinism contract — any
new wall-clock read, unseeded RNG, OS-entropy draw, or unordered
iteration in ``src/repro`` fails the test suite, not just the optional
tier-2 gate.
"""

from pathlib import Path

import repro
from repro.analysis import lint_paths, render_text

PACKAGE_ROOT = Path(repro.__file__).parent


def test_src_tree_lints_clean():
    findings = lint_paths([PACKAGE_ROOT])
    assert findings == [], (
        "determinism linter found violations in src/repro "
        "(fix them or add a justified '# repro: allow[RULE]'):\n"
        + render_text(findings)
    )


def test_package_root_is_the_real_tree():
    # Guard against the test silently passing because it linted an
    # installed copy with no modules in it.
    assert (PACKAGE_ROOT / "analysis" / "linter.py").is_file()
    assert (PACKAGE_ROOT / "engine" / "simulator.py").is_file()
