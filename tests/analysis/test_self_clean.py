"""Tier-1 enforcement: the shipped tree passes every analyzer.

This is the teeth behind CONTRIBUTING.md's determinism contract — any
new wall-clock read, unseeded RNG, OS-entropy draw, unordered
iteration, unpicklable factory, worker-shared-state write, or
order-sensitive reduction in the shipped tree fails the test suite,
not just the optional tier-2 gate.

``src/repro`` is held to the full ruleset; ``scripts/``,
``benchmarks/`` and ``examples/`` ride along with the same contract
(they feed published numbers, so entropy and pickle hazards there are
just as real). ``tests/`` is checked too, excluding the lint fixtures,
which exist to violate the rules.
"""

from pathlib import Path

import pytest

import repro
from repro.analysis import check_sources, lint_paths, render_text

PACKAGE_ROOT = Path(repro.__file__).parent
REPO_ROOT = PACKAGE_ROOT.parent.parent
FIXTURES = REPO_ROOT / "tests" / "analysis" / "fixtures"

#: Checked trees beyond src/: tree -> required sentinel file, so a
#: repo relayout fails loudly instead of linting nothing.
SUPPORT_TREES = {
    "scripts": "check.sh",
    "benchmarks": "test_engine_performance.py",
    "examples": "quickstart.py",
}


def test_src_tree_lints_clean():
    findings = lint_paths([PACKAGE_ROOT])
    assert findings == [], (
        "determinism linter found violations in src/repro "
        "(fix them or add a justified '# repro: allow[RULE]'):\n"
        + render_text(findings)
    )


def test_src_tree_passes_all_analyzers():
    findings = check_sources([PACKAGE_ROOT])
    assert findings == [], (
        "analyzers found violations in src/repro:\n"
        + render_text(findings)
    )


@pytest.mark.parametrize("tree", sorted(SUPPORT_TREES))
def test_support_tree_passes_all_analyzers(tree):
    root = REPO_ROOT / tree
    assert (root / SUPPORT_TREES[tree]).is_file(), (
        f"{tree}/ moved — update SUPPORT_TREES so it stays checked"
    )
    findings = check_sources([root])
    assert findings == [], (
        f"analyzers found violations in {tree}/:\n"
        + render_text(findings)
    )


def test_test_tree_passes_all_analyzers():
    findings = check_sources(
        [REPO_ROOT / "tests"], exclude=[FIXTURES]
    )
    assert findings == [], (
        "analyzers found violations in tests/ (fixtures excluded):\n"
        + render_text(findings)
    )


def test_package_root_is_the_real_tree():
    # Guard against the test silently passing because it linted an
    # installed copy with no modules in it.
    assert (PACKAGE_ROOT / "analysis" / "linter.py").is_file()
    assert (PACKAGE_ROOT / "analysis" / "parallel.py").is_file()
    assert (PACKAGE_ROOT / "engine" / "simulator.py").is_file()
    assert FIXTURES.is_dir()
