"""Tests for the determinism linter (``repro.analysis.linter``)."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    LINT_RULES,
    AnalysisError,
    Severity,
    lint_file,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> the single rule it exercises
RULE_FIXTURES = {
    "wall_clock.py": "REPRO101",
    "unseeded_rng.py": "REPRO102",
    "os_entropy.py": "REPRO103",
    "unordered_iteration.py": "REPRO104",
    "id_ordering.py": "REPRO105",
}


def _lines_of(source, marker):
    return [
        lineno
        for lineno, line in enumerate(source.splitlines(), start=1)
        if marker in line
    ]


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "filename,code", sorted(RULE_FIXTURES.items())
    )
    def test_rule_fires_on_fixture(self, filename, code):
        findings = lint_file(FIXTURES / filename)
        assert findings, f"{filename} should trigger {code}"
        assert {f.code for f in findings} == {code}

    @pytest.mark.parametrize(
        "filename,code", sorted(RULE_FIXTURES.items())
    )
    def test_findings_confined_to_flagged_function(
        self, filename, code
    ):
        path = FIXTURES / filename
        source = path.read_text()
        flagged_start = _lines_of(source, "def flagged")[0]
        flagged_end = _lines_of(source, "def suppressed")[0]
        for finding in lint_file(path):
            assert flagged_start < finding.line < flagged_end, (
                f"{code} fired outside flagged() at line "
                f"{finding.line}: {finding.message}"
            )

    @pytest.mark.parametrize("filename", sorted(RULE_FIXTURES))
    def test_suppression_silences_rule(self, filename):
        # Every finding sits in flagged(); the suppressed() bodies use
        # all three spellings (rule id, rule name, wildcard) and the
        # not_flagged() bodies show sanctioned equivalents.
        path = FIXTURES / filename
        source = path.read_text()
        suppression_lines = _lines_of(source, "repro: allow[")
        assert suppression_lines, f"{filename} lacks suppressions"
        flagged = {f.line for f in lint_file(path)}
        assert not flagged & set(suppression_lines)

    def test_clean_fixture_has_no_findings(self):
        assert lint_file(FIXTURES / "clean.py") == []

    def test_syntax_error_reports_repro100(self):
        findings = lint_file(FIXTURES / "syntax_error.py")
        assert len(findings) == 1
        assert findings[0].code == "REPRO100"
        assert "could not parse" in findings[0].message


class TestLintSource:
    def test_reports_line_and_column(self):
        findings = lint_source(
            "import time\nx = time.time()\n", path="inline.py"
        )
        assert len(findings) == 1
        f = findings[0]
        assert (f.code, f.line, f.path) == (
            "REPRO101",
            2,
            "inline.py",
        )
        assert f.severity is Severity.ERROR

    def test_select_restricts_rules(self):
        source = "import time, random\n" \
            "a = time.time()\n" \
            "b = random.random()\n"
        only_rng = lint_source(
            source, path="x.py", select=["REPRO102"]
        )
        assert {f.code for f in only_rng} == {"REPRO102"}

    def test_ignore_drops_rules(self):
        source = "import time, random\n" \
            "a = time.time()\n" \
            "b = random.random()\n"
        no_clock = lint_source(
            source, path="x.py", ignore=["wall-clock"]
        )
        assert {f.code for f in no_clock} == {"REPRO102"}

    def test_unknown_rule_key_raises(self):
        with pytest.raises(AnalysisError):
            lint_source("x = 1\n", path="x.py", select=["REPRO999"])

    def test_wildcard_suppression(self):
        source = (
            "import time\n"
            "x = time.time()  # repro: allow[*]\n"
        )
        assert lint_source(source, path="x.py") == []


class TestLintPaths:
    def test_directory_recurses_and_sorts(self):
        findings = lint_paths([FIXTURES])
        paths = [f.path for f in findings]
        assert paths == sorted(paths)
        assert {f.code for f in findings} == {
            "REPRO100",
            "REPRO101",
            "REPRO102",
            "REPRO103",
            "REPRO104",
            "REPRO105",
        }

    def test_missing_path_raises(self):
        with pytest.raises(AnalysisError):
            lint_paths([FIXTURES / "does_not_exist.py"])


class TestReporters:
    def _sample(self):
        return lint_source(
            "import time\nx = time.time()\n", path="sample.py"
        )

    def test_render_text_gcc_style(self):
        text = render_text(self._sample())
        assert "sample.py:2:" in text
        assert "REPRO101" in text
        assert "found 1 error(s), 0 warning(s)" in text

    def test_render_text_clean(self):
        assert "all checks passed" in render_text([])

    def test_render_json_round_trips(self):
        payload = json.loads(render_json(self._sample()))
        assert payload["errors"] == 1
        assert payload["warnings"] == 0
        (diag,) = payload["diagnostics"]
        assert diag["code"] == "REPRO101"
        assert diag["path"] == "sample.py"
        assert diag["line"] == 2


class TestRegistry:
    def test_every_rule_has_id_name_rationale(self):
        for rule in LINT_RULES:
            assert rule.id.startswith("REPRO")
            assert rule.name
            assert rule.summary
            assert rule.rationale

    def test_fixture_coverage_is_complete(self):
        # Every non-syntax rule in the registry has a fixture file;
        # adding a rule without a fixture fails here.
        covered = set(RULE_FIXTURES.values()) | {"REPRO100"}
        assert covered == set(LINT_RULES.ids)
