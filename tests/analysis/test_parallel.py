"""Tests for the parallel-safety analyzer (REPRO2xx/3xx/4xx) and the
driver-level stale-suppression check (REPRO501).

Mirrors the fixture layout of ``test_linter.py``: each rule has one
fixture in ``fixtures/`` with ``flagged``/``suppressed``/``not_flagged``
regions, and the tests assert findings land only in the flagged region.
"""

from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.analysis import (
    EQUIVALENCE_SENSITIVE_MODULES,
    FAMILIES,
    PARALLEL_RULES,
    SINK_REGISTRY,
    WORKER_ENTRY_POINTS,
    AnalysisError,
    ProcessBoundarySink,
    Severity,
    check_parallel_paths,
    check_parallel_source,
    check_source,
    ensure_parallel_safe,
    register_equivalence_sensitive,
    register_sink,
    register_worker_entry,
    unpicklable_reason,
)
from repro.analysis.driver import HYGIENE_RULES, all_rules, resolve_selection

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file -> the one parallel-safety rule it exercises
PARALLEL_FIXTURES = {
    "lambda_factory.py": "REPRO201",
    "local_factory.py": "REPRO202",
    "bound_method_factory.py": "REPRO203",
    "unpicklable_partial.py": "REPRO204",
    "worker_global_write.py": "REPRO301",
    "worker_module_mutation.py": "REPRO302",
    "worker_class_state.py": "REPRO303",
    "builtin_sum_array.py": "REPRO401",
    "pairwise_reduction.py": "REPRO402",
    "set_order_accumulation.py": "REPRO403",
}


def _lines_of(source: str, marker: str):
    return [
        index
        for index, line in enumerate(source.splitlines(), start=1)
        if marker in line
    ]


class TestRuleFixtures:
    @pytest.mark.parametrize(
        "fixture,code", sorted(PARALLEL_FIXTURES.items())
    )
    def test_rule_fires_on_fixture(self, fixture, code):
        source = (FIXTURES / fixture).read_text()
        findings = check_parallel_source(source, str(FIXTURES / fixture))
        assert findings, f"{fixture} produced no findings"
        assert {f.code for f in findings} == {code}

    @pytest.mark.parametrize(
        "fixture,code", sorted(PARALLEL_FIXTURES.items())
    )
    def test_findings_confined_to_flagged_region(self, fixture, code):
        source = (FIXTURES / fixture).read_text()
        findings = check_parallel_source(source, str(FIXTURES / fixture))
        start = _lines_of(source, "def flagged")[0]
        stop = _lines_of(source, "def suppressed")[0]
        for finding in findings:
            assert start <= finding.line < stop, (
                f"{fixture}: {finding.code} at line {finding.line} "
                f"escaped the flagged region [{start}, {stop})"
            )

    @pytest.mark.parametrize(
        "fixture,code", sorted(PARALLEL_FIXTURES.items())
    )
    def test_suppression_silences_rule(self, fixture, code):
        source = (FIXTURES / fixture).read_text()
        findings = check_parallel_source(source, str(FIXTURES / fixture))
        allow_lines = set(_lines_of(source, "repro: allow["))
        assert allow_lines, f"{fixture} has no suppressed examples"
        assert allow_lines.isdisjoint(f.line for f in findings)

    def test_fixture_coverage_is_complete(self):
        assert set(PARALLEL_FIXTURES.values()) == set(PARALLEL_RULES.ids)

    def test_fixture_directory_yields_every_parallel_rule(self):
        findings = check_parallel_paths([FIXTURES])
        assert {f.code for f in findings} == set(PARALLEL_RULES.ids)

    def test_all_parallel_findings_are_errors(self):
        findings = check_parallel_paths([FIXTURES])
        assert all(f.severity is Severity.ERROR for f in findings)


class TestStaleAllowFixture:
    FIXTURE = "stale_allow.py"

    def _findings(self):
        source = (FIXTURES / self.FIXTURE).read_text()
        return source, check_source(source, str(FIXTURES / self.FIXTURE))

    def test_stale_allows_reported_as_warnings(self):
        source, findings = self._findings()
        assert findings, "stale_allow.py produced no findings"
        assert {f.code for f in findings} == {"REPRO501"}
        assert all(f.severity is Severity.WARNING for f in findings)

    def test_findings_confined_to_flagged_region(self):
        source, findings = self._findings()
        start = _lines_of(source, "def flagged")[0]
        stop = _lines_of(source, "def suppressed")[0]
        assert all(start <= f.line < stop for f in findings)

    def test_unknown_rule_token_is_called_out(self):
        source, findings = self._findings()
        messages = " ".join(f.message for f in findings)
        assert "REPRO999" in messages

    def test_live_suppression_is_not_stale(self):
        # not_flagged() suppresses a finding that really fires, and
        # suppressed() opts out via the REPRO501 token: neither may
        # contribute findings (verified by the confinement test), and
        # the live time.time() call must stay suppressed.
        _, findings = self._findings()
        assert "REPRO101" not in {f.code for f in findings}

    def test_repro501_lives_in_suppressions_family(self):
        (rule,) = [r for r in HYGIENE_RULES if r.id == "REPRO501"]
        assert rule.family == "suppressions"


class TestFamilies:
    def test_new_families_are_registered(self):
        for family in (
            "pickle-safety",
            "worker-shared-state",
            "reduction-order",
            "suppressions",
        ):
            assert family in FAMILIES

    def test_every_rule_belongs_to_a_named_family(self):
        for rule in all_rules():
            assert rule.family in FAMILIES

    def test_family_prefixes_match_issue_numbering(self):
        by_family = {}
        for rule in PARALLEL_RULES:
            by_family.setdefault(rule.family, []).append(rule.id)
        assert all(
            rule_id.startswith("REPRO2")
            for rule_id in by_family["pickle-safety"]
        )
        assert all(
            rule_id.startswith("REPRO3")
            for rule_id in by_family["worker-shared-state"]
        )
        assert all(
            rule_id.startswith("REPRO4")
            for rule_id in by_family["reduction-order"]
        )

    def test_select_accepts_family_names(self):
        selected = resolve_selection(["pickle-safety"])
        assert selected == {"REPRO201", "REPRO202", "REPRO203", "REPRO204"}

    def test_select_rejects_unknown_tokens(self):
        with pytest.raises(AnalysisError, match="REPROXX"):
            resolve_selection(["REPROXX"])

    def test_family_select_filters_check_source(self):
        source = (FIXTURES / "lambda_factory.py").read_text()
        assert check_source(source, select=["worker-shared-state"]) == []
        findings = check_source(source, select=["pickle-safety"])
        assert {f.code for f in findings} == {"REPRO201"}

    def test_family_ignore_filters_check_source(self):
        source = (FIXTURES / "lambda_factory.py").read_text()
        findings = check_source(
            source, ignore=["pickle-safety", "suppressions"]
        )
        assert findings == []


class TestRegistries:
    def test_register_sink_is_idempotent_for_equal_specs(self):
        sink = SINK_REGISTRY["repro.faults.campaigns.CampaignCellSpec"]
        assert register_sink(sink) is sink

    def test_register_sink_rejects_conflicting_respec(self):
        qualname = "repro.faults.campaigns.CampaignCellSpec"
        conflicting = ProcessBoundarySink(
            qualname=qualname,
            factory_params={"other": 0},
            description="conflicting",
        )
        with pytest.raises(AnalysisError, match="already registered"):
            register_sink(conflicting)

    def test_register_worker_entry_and_equivalence_module(self):
        entry = "tests.analysis.test_parallel._fake_entry"
        module = "tests.analysis.test_parallel_fake_module"
        try:
            assert register_worker_entry(entry) == entry
            assert entry in WORKER_ENTRY_POINTS
            assert register_equivalence_sensitive(module) == module
            assert module in EQUIVALENCE_SENSITIVE_MODULES
        finally:
            WORKER_ENTRY_POINTS.discard(entry)
            EQUIVALENCE_SENSITIVE_MODULES.discard(module)

    def test_shipped_worker_entries_cover_campaign_paths(self):
        assert (
            "repro.faults.campaigns.run_campaign_cell"
            in WORKER_ENTRY_POINTS
        )
        assert (
            "repro.faults.checkpoint.supervised_cell_attempt"
            in WORKER_ENTRY_POINTS
        )

    def test_engine_modules_are_equivalence_sensitive(self):
        assert (
            "repro.engine.vectorized" in EQUIVALENCE_SENSITIVE_MODULES
        )


def _module_factory():
    return object()


class _Holder:
    def method(self):
        return object()


class TestRuntimeGuard:
    def test_module_level_callable_passes(self):
        assert ensure_parallel_safe(_module_factory) is _module_factory
        assert unpicklable_reason(_module_factory) is None

    def test_lambda_is_rejected_as_repro201(self):
        reason = unpicklable_reason(lambda: None)
        assert reason is not None and "[REPRO201]" in reason
        with pytest.raises(AnalysisError, match=r"\[REPRO201\]"):
            ensure_parallel_safe(lambda: None)

    def test_local_def_is_rejected_as_repro202(self):
        def local_factory():
            return object()

        reason = unpicklable_reason(local_factory)
        assert reason is not None and "[REPRO202]" in reason
        assert "local_factory" in reason

    def test_bound_method_is_rejected_as_repro203(self):
        reason = unpicklable_reason(_Holder().method)
        assert reason is not None and "[REPRO203]" in reason

    def test_classmethod_bound_to_type_passes(self):
        # classmethods pickle by qualified name like plain functions.
        assert unpicklable_reason(dict.fromkeys) is None

    def test_partial_over_lambda_is_rejected_as_repro204(self):
        from functools import partial

        reason = unpicklable_reason(partial(sorted, key=lambda x: x))
        assert reason is not None
        assert "[REPRO204]" in reason and "[REPRO201]" in reason

    def test_partial_over_module_callable_passes(self):
        from functools import partial

        assert unpicklable_reason(partial(_module_factory)) is None

    def test_mapping_values_are_checked_and_keyed(self):
        reason = unpicklable_reason(
            {"ok": _module_factory, "bad": lambda: None}
        )
        assert reason is not None
        assert "'bad'" in reason and "[REPRO201]" in reason

    def test_context_prefixes_the_error(self):
        with pytest.raises(AnalysisError, match="controllers_factory:"):
            ensure_parallel_safe(
                lambda: None, context="controllers_factory"
            )


class TestProcessBoundaryHooks:
    def test_parallel_executor_rejects_lambda_factory(self):
        from repro.faults.campaigns import ParallelExecutor
        from repro.errors import FaultInjectionError

        spec = SimpleNamespace(
            key=(7, 0, "lam"), controller_factory=lambda: None
        )
        with pytest.raises(FaultInjectionError) as excinfo:
            ParallelExecutor._ensure_submittable([spec], [0])
        message = str(excinfo.value)
        assert "controller='lam'" in message
        assert "[REPRO201]" in message

    def test_parallel_executor_accepts_module_factory(self):
        from repro.faults.campaigns import ParallelExecutor

        spec = SimpleNamespace(
            key=(7, 0, "ok"), controller_factory=_module_factory
        )
        ParallelExecutor._ensure_submittable([spec], [0])

    def test_chaos_workload_rejects_lambda_factory(self):
        from repro.experiments.chaos import ChaosWorkload

        with pytest.raises(
            AnalysisError, match=r"graph_factory.*\[REPRO201\]"
        ):
            ChaosWorkload(
                name="bad",
                description="lambda factory must be rejected",
                policy_interval=1.0,
                graph_factory=lambda: None,  # repro: allow[REPRO201] — deliberate: asserts rejection
                runtime_factory=_module_factory,
                parallelism_factory=_module_factory,
                controllers_factory=_module_factory,
            )

    def test_shipped_chaos_workloads_construct_cleanly(self):
        # WORKLOADS is built at import time, so importing it at all
        # proves every shipped factory passed ensure_parallel_safe.
        from repro.experiments.chaos import WORKLOADS

        assert WORKLOADS
