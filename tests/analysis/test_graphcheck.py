"""Tests for the dataflow-graph static checker
(``repro.analysis.graphcheck``)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    GRAPH_CHECKS,
    AnalysisError,
    GraphSpec,
    NodeSpec,
    Severity,
    check_graph,
    ensure_valid_graph,
    graph_spec_from_json,
    graph_spec_from_logical,
)
from repro.analysis.workload_graphs import (
    build_graph,
    builtin_graph_names,
)
from repro.errors import GraphError


def _spec(nodes, edges, name="test-graph"):
    return GraphSpec(nodes=tuple(nodes), edges=tuple(edges), name=name)


def _errors(findings):
    return [f for f in findings if f.severity is Severity.ERROR]


def _codes(findings):
    return {f.code for f in findings}


def _linear(*, source_rate=100.0):
    return _spec(
        [
            NodeSpec("src", kind="source", max_rate=source_rate),
            NodeSpec("map", kind="map"),
            NodeSpec("out", kind="sink"),
        ],
        [("src", "map"), ("map", "out")],
    )


class TestWellFormedGraphs:
    def test_linear_pipeline_is_clean(self):
        assert check_graph(_linear()) == []

    @pytest.mark.parametrize("name", builtin_graph_names())
    def test_every_builtin_graph_passes(self, name):
        graph = build_graph(name)
        findings = check_graph(graph, name=name)
        assert _errors(findings) == [], (
            f"built-in graph {name!r} fails its own invariants: "
            f"{[f.message for f in findings]}"
        )

    def test_accepts_logical_graph_directly(self):
        graph = build_graph("wordcount-heron")
        direct = check_graph(graph)
        via_spec = check_graph(graph_spec_from_logical(graph))
        assert direct == via_spec


class TestStructuralErrors:
    def test_cycle_is_rejected_with_cycle_members(self):
        spec = _spec(
            [
                NodeSpec("src", kind="source", max_rate=10.0),
                NodeSpec("a"),
                NodeSpec("b"),
                NodeSpec("out", kind="sink"),
            ],
            [("src", "a"), ("a", "b"), ("b", "a"), ("a", "out")],
        )
        findings = check_graph(spec)
        assert _codes(findings) == {"GRAPH101"}
        (finding,) = findings
        # Actionable: names exactly the nodes on the cycle (not the
        # innocent downstream sink) and says how to fix it.
        assert "['a', 'b']" in finding.message
        assert "removing one of the back edges" in finding.message

    def test_orphan_operator_is_rejected(self):
        spec = _spec(
            [
                NodeSpec("src", kind="source", max_rate=10.0),
                NodeSpec("a"),
                NodeSpec("lost"),
                NodeSpec("out", kind="sink"),
            ],
            [("src", "a"), ("a", "out")],
        )
        findings = check_graph(spec)
        assert "GRAPH104" in _codes(findings)
        orphan = next(f for f in findings if f.code == "GRAPH104")
        assert "'lost'" in orphan.message
        assert "unreachable from every source" in orphan.message

    def test_dead_end_operator_is_rejected(self):
        spec = _spec(
            [
                NodeSpec("src", kind="source", max_rate=10.0),
                NodeSpec("stuck"),
                NodeSpec("out", kind="sink"),
            ],
            [("src", "stuck"), ("src", "out")],
        )
        findings = check_graph(spec)
        assert "GRAPH105" in _codes(findings)

    def test_missing_source_and_sink(self):
        spec = _spec(
            [NodeSpec("a"), NodeSpec("b")], [("a", "b")]
        )
        codes = _codes(check_graph(spec))
        assert "GRAPH102" in codes
        assert "GRAPH103" in codes

    def test_source_with_inputs_and_sink_with_outputs(self):
        spec = _spec(
            [
                NodeSpec("src", kind="source", max_rate=10.0),
                NodeSpec("mid"),
                NodeSpec("out", kind="sink"),
            ],
            [
                ("src", "mid"),
                ("mid", "src"),
                ("mid", "out"),
                ("out", "mid"),
            ],
        )
        codes = _codes(check_graph(spec))
        assert "GRAPH106" in codes
        assert "GRAPH107" in codes

    def test_join_requires_two_inputs(self):
        spec = _spec(
            [
                NodeSpec("src", kind="source", max_rate=10.0),
                NodeSpec("j", kind="join"),
                NodeSpec("out", kind="sink"),
            ],
            [("src", "j"), ("j", "out")],
        )
        assert "GRAPH108" in _codes(check_graph(spec))

    def test_malformed_spec_reports_every_problem_at_once(self):
        spec = _spec(
            [
                NodeSpec("src", kind="source", max_rate=10.0),
                NodeSpec("src", kind="source", max_rate=10.0),
                NodeSpec("odd", kind="quantum"),
                NodeSpec("out", kind="sink"),
            ],
            [
                ("src", "out"),
                ("src", "ghost"),
                ("odd", "odd"),
            ],
        )
        findings = check_graph(spec)
        messages = " | ".join(
            f.message for f in findings if f.code == "GRAPH100"
        )
        assert "duplicate operator name 'src'" in messages
        assert "unknown kind 'quantum'" in messages
        assert "unknown operator 'ghost'" in messages
        assert "self-loop" in messages


class TestPlanChecks:
    def test_parallelism_bounds(self):
        findings = check_graph(
            _linear(),
            parallelism={"src": 0, "map": 99, "ghost": 1},
            max_parallelism=16,
        )
        assert _codes(findings) == {"GRAPH201"}
        messages = " | ".join(f.message for f in findings)
        assert "'src'" in messages
        assert "'map'" in messages
        assert "'ghost'" in messages

    def test_non_data_parallel_operator_cannot_scale(self):
        spec = _spec(
            [
                NodeSpec("src", kind="source", max_rate=10.0),
                NodeSpec(
                    "serial", kind="map", data_parallel=False
                ),
                NodeSpec("out", kind="sink"),
            ],
            [("src", "serial"), ("serial", "out")],
        )
        findings = check_graph(spec, parallelism={"serial": 4})
        assert _codes(findings) == {"GRAPH201"}

    def test_valid_plan_is_clean(self):
        findings = check_graph(
            _linear(),
            parallelism={"src": 1, "map": 8, "out": 1},
            max_parallelism=16,
        )
        assert findings == []


class TestRateSanity:
    def test_negative_selectivity_is_error(self):
        spec = _spec(
            [
                NodeSpec("src", kind="source", max_rate=10.0),
                NodeSpec("bad", selectivity=-2.0),
                NodeSpec("out", kind="sink"),
            ],
            [("src", "bad"), ("bad", "out")],
        )
        errors = _errors(check_graph(spec))
        assert _codes(errors) == {"GRAPH301"}

    def test_zero_source_rate_is_warning(self):
        findings = check_graph(_linear(source_rate=0.0))
        assert findings
        assert all(
            f.severity is Severity.WARNING for f in findings
        )
        assert _codes(findings) == {"GRAPH301"}

    def test_zero_long_run_rate_downstream_is_warning(self):
        spec = _spec(
            [
                NodeSpec("src", kind="source", max_rate=10.0),
                NodeSpec("drop", kind="filter", selectivity=0.0),
                NodeSpec("starved"),
                NodeSpec("out", kind="sink"),
            ],
            [("src", "drop"), ("drop", "starved"), ("starved", "out")],
        )
        findings = check_graph(spec)
        assert any(
            f.code == "GRAPH301" and "starved" in f.message
            for f in findings
        )
        assert _errors(findings) == []


class TestEnsureValidGraph:
    def test_raises_graph_error_with_codes(self):
        spec = _spec(
            [NodeSpec("a"), NodeSpec("b")],
            [("a", "b"), ("b", "a")],
        )
        with pytest.raises(GraphError) as exc:
            ensure_valid_graph(spec, name="bad-graph")
        assert "bad-graph" in str(exc.value)
        assert "[GRAPH101]" in str(exc.value)

    def test_warnings_do_not_raise(self):
        ensure_valid_graph(_linear(source_rate=0.0))

    def test_builtin_graphs_pass(self):
        for name in builtin_graph_names():
            ensure_valid_graph(build_graph(name), name=name)


class TestJsonSpecs:
    PIPELINE = {
        "name": "json-pipeline",
        "operators": [
            {"name": "src", "kind": "source", "rate": 500.0},
            {"name": "map", "kind": "map", "selectivity": 2.0},
            {"name": "out", "kind": "sink"},
        ],
        "edges": [["src", "map"], ["map", "out"]],
    }

    def test_load_from_mapping(self):
        spec = graph_spec_from_json(self.PIPELINE)
        assert spec.name == "json-pipeline"
        assert check_graph(spec) == []

    def test_load_from_string_and_file(self, tmp_path):
        text = json.dumps(self.PIPELINE)
        from_string = graph_spec_from_json(text)
        path = tmp_path / "pipeline.json"
        path.write_text(text)
        from_file = graph_spec_from_json(path)
        assert from_string == from_file

    def test_malformed_document_raises(self):
        with pytest.raises(AnalysisError):
            graph_spec_from_json("{not json")
        with pytest.raises(AnalysisError):
            graph_spec_from_json({"operators": "nope"})

    def test_semantic_problems_left_to_checker(self):
        doc = dict(self.PIPELINE)
        doc["edges"] = [["src", "map"], ["map", "src"]]
        spec = graph_spec_from_json(doc)
        assert "GRAPH101" in _codes(check_graph(spec))


class TestRegistry:
    def test_every_check_has_id_and_rationale(self):
        for rule in GRAPH_CHECKS:
            assert rule.id.startswith("GRAPH")
            assert rule.rationale


# ----------------------------------------------------------------------
# Property tests: the checker accepts every built-in workload graph and
# rejects any single-edge mutation that introduces a cycle or orphan.
# ----------------------------------------------------------------------

_BUILTIN = builtin_graph_names()


@st.composite
def _builtin_spec(draw):
    name = draw(st.sampled_from(_BUILTIN))
    graph = build_graph(name)
    return graph_spec_from_logical(graph, name=name)


@given(spec=_builtin_spec())
@settings(max_examples=25, deadline=None)
def test_property_builtin_graphs_are_clean(spec):
    assert _errors(check_graph(spec)) == []


@given(spec=_builtin_spec(), data=st.data())
@settings(max_examples=25, deadline=None)
def test_property_added_back_edge_is_rejected(spec, data):
    edge = data.draw(st.sampled_from(list(spec.edges)))
    up, down = edge
    mutated = GraphSpec(
        nodes=spec.nodes,
        edges=spec.edges + ((down, up),),
        name=spec.name,
    )
    codes = _codes(_errors(check_graph(mutated)))
    # Reversing an existing edge yields a 2-cycle; if one endpoint is
    # a source/sink the kind-structure checks fire too. Either way the
    # graph must not pass.
    assert codes & {"GRAPH101", "GRAPH106", "GRAPH107"}


@given(spec=_builtin_spec())
@settings(max_examples=25, deadline=None)
def test_property_detached_operator_is_rejected(spec):
    mutated = GraphSpec(
        nodes=spec.nodes + (NodeSpec("detached", kind="map"),),
        edges=spec.edges,
        name=spec.name,
    )
    codes = _codes(_errors(check_graph(mutated)))
    assert {"GRAPH104", "GRAPH105"} <= codes
