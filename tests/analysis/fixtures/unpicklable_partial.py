"""Fixture: REPRO204 partials wrapping unpicklable values, flagged
and suppressed."""

from functools import partial

from repro.faults.campaigns import CampaignCellSpec


def _make_controller(kind):
    return kind


def flagged():
    wrapped_lambda = CampaignCellSpec(
        controller_factory=partial(_make_controller, lambda: None)
    )

    def local_kind():
        return object()

    wrapped_local = CampaignCellSpec(
        controller_factory=partial(_make_controller, local_kind)
    )
    return wrapped_lambda, wrapped_local


def suppressed():
    ok = CampaignCellSpec(
        controller_factory=partial(_make_controller, lambda: None)  # repro: allow[REPRO204]
    )
    also = CampaignCellSpec(
        controller_factory=partial(_make_controller, lambda: None)  # repro: allow[unpicklable-partial]
    )
    return ok, also


def not_flagged():
    # partial over module-level callables and plain data pickles fine.
    return CampaignCellSpec(
        controller_factory=partial(_make_controller, "ds2")
    )
