"""Fixture: REPRO302 module-container mutation reachable from a
worker entry, flagged and suppressed."""

_RESULTS = []
_INDEX = {}


# repro: worker-entry
def flagged(spec):
    _RESULTS.append(spec)
    _INDEX[spec] = 1
    _chain(spec)


def _chain(spec):
    # Not itself an entry point: flagged because flagged() reaches it.
    _RESULTS.extend([spec])


# repro: worker-entry
def suppressed(spec):
    _RESULTS.append(spec)  # repro: allow[REPRO302]
    _INDEX[spec] = 1  # repro: allow[worker-module-mutation]


# repro: worker-entry
def not_flagged(spec):
    # Locals (including a shadowing rebind) are worker-private by
    # design; mutating them is fine.
    results = []
    results.append(spec)
    _INDEX = {}
    _INDEX[spec] = 1
    return results, _INDEX
