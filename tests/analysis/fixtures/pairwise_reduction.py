"""Fixture: REPRO402 pairwise/compensated reductions in an
equivalence-sensitive module, flagged and suppressed."""

# repro: equivalence-sensitive

import math

import numpy as np


def flagged(block):
    arr = np.asarray(block)
    a = np.sum(arr)
    b = math.fsum(arr)
    c = arr.sum()
    return a, b, c


def suppressed(block):
    arr = np.asarray(block)
    a = np.sum(arr)  # repro: allow[REPRO402]
    b = arr.sum()  # repro: allow[pairwise-reduction]
    return a, b


def not_flagged(block):
    # np.cumsum is sequential by definition, and a Python loop over
    # .tolist() is the contract's oracle ordering.
    arr = np.asarray(block)
    running = np.cumsum(arr)
    total = 0.0
    for value in arr.tolist():
        total += value
    return running, total
