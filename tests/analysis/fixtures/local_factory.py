"""Fixture: REPRO202 locally-defined callables crossing a process
boundary, flagged and suppressed."""

from repro.faults.campaigns import CampaignCellSpec


def _module_controller():
    return object()


def flagged():
    def local_controller():
        return object()

    class LocalController:
        pass

    a = CampaignCellSpec(controller_factory=local_controller)
    b = CampaignCellSpec(controller_factory=LocalController)
    return a, b


def suppressed():
    def local_controller():
        return object()

    a = CampaignCellSpec(controller_factory=local_controller)  # repro: allow[REPRO202]
    b = CampaignCellSpec(controller_factory=local_controller)  # repro: allow[local-factory]
    return a, b


def not_flagged():
    # Module-level callables import cleanly in the worker.
    return CampaignCellSpec(controller_factory=_module_controller)
