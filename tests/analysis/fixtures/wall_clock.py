"""Fixture: REPRO101 wall-clock calls, flagged and suppressed."""

import datetime
import time
from datetime import datetime as dt


def flagged():
    a = time.time()
    b = time.monotonic()
    c = time.perf_counter_ns()
    d = datetime.datetime.now()
    e = dt.utcnow()
    f = datetime.date.today()
    return a, b, c, d, e, f


def suppressed():
    a = time.time()  # repro: allow[REPRO101]
    b = datetime.datetime.now()  # repro: allow[wall-clock]
    c = time.monotonic()  # repro: allow[*]
    return a, b, c


def not_flagged(clock):
    # Calls on unrelated objects with the same attribute name are fine.
    return clock.time()
