"""Fixture: REPRO501 stale suppressions — allow comments whose rule
no longer fires on that line (driver-level check)."""

import time


def flagged():
    value = 1  # repro: allow[REPRO101]
    other = 2  # repro: allow[*]
    typo = 3  # repro: allow[REPRO999]
    return value, other, typo


def suppressed():
    # An explicit stale-allow token opts the line out of the check.
    value = 1  # repro: allow[REPRO101, REPRO501]
    return value


def not_flagged():
    # The allow suppresses a live finding, so it is not stale.
    return time.time()  # repro: allow[REPRO101]
