"""Fixture: REPRO100 unparseable source."""

def broken(:
    pass
