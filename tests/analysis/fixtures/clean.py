"""Fixture: a file with zero findings under every rule."""

import random


def deterministic_pipeline(seed, values):
    rng = random.Random(seed)
    shuffled = list(values)
    rng.shuffle(shuffled)
    return sorted(set(shuffled))
