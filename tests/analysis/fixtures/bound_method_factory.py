"""Fixture: REPRO203 bound methods crossing a process boundary,
flagged and suppressed."""

from repro.faults.campaigns import CampaignCellSpec


def _module_controller():
    return object()


class Builder:
    def make_controller(self):
        return object()

    def flagged(self):
        return CampaignCellSpec(controller_factory=self.make_controller)

    @classmethod
    def flagged_classmethod(cls):
        return CampaignCellSpec(controller_factory=cls.make_controller)

    def suppressed(self):
        a = CampaignCellSpec(controller_factory=self.make_controller)  # repro: allow[REPRO203]
        b = CampaignCellSpec(controller_factory=self.make_controller)  # repro: allow[bound-method-factory]
        return a, b

    def not_flagged(self):
        # A module-level function does not capture the instance.
        return CampaignCellSpec(controller_factory=_module_controller)
