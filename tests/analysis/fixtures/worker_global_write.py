"""Fixture: REPRO301 global assignment reachable from a worker entry,
flagged and suppressed."""

_TOTAL = 0.0
_LAST = None


# repro: worker-entry
def flagged(spec):
    global _TOTAL
    _TOTAL = _TOTAL + spec
    _helper(spec)


def _helper(spec):
    # Not itself an entry point: flagged because flagged() reaches it.
    global _LAST
    _LAST = spec


# repro: worker-entry
def suppressed(spec):
    global _TOTAL
    _TOTAL = spec  # repro: allow[REPRO301]
    _TOTAL += spec  # repro: allow[worker-global-write]


# repro: worker-entry
def not_flagged(spec):
    # Thread state through locals and return values instead.
    total = 0.0
    total += spec
    return total
