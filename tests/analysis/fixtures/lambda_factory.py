"""Fixture: REPRO201 lambdas crossing a process boundary, flagged
and suppressed."""

from repro.faults.campaigns import CampaignCellSpec

module_lambda = lambda: None  # noqa: E731 — the point of the fixture


def _controller():
    return object()


def flagged():
    direct = CampaignCellSpec(controller_factory=lambda: None)
    named = CampaignCellSpec(controller_factory=module_lambda)
    local_lambda = lambda: None  # noqa: E731
    bound = CampaignCellSpec(controller_factory=local_lambda)
    return direct, named, bound


def suppressed():
    a = CampaignCellSpec(controller_factory=lambda: None)  # repro: allow[REPRO201]
    b = CampaignCellSpec(controller_factory=module_lambda)  # repro: allow[lambda-factory]
    return a, b


def not_flagged():
    # A module-level function pickles by qualified name.
    return CampaignCellSpec(controller_factory=_controller)
