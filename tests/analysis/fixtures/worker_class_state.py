"""Fixture: REPRO303 class-attribute writes reachable from a worker
entry, flagged and suppressed."""


class Tally:
    count = 0

    # repro: worker-entry
    @classmethod
    def flagged_method(cls, spec):
        cls.count = spec


# repro: worker-entry
def flagged(spec):
    Tally.count = spec
    Tally.count += 1


# repro: worker-entry
def suppressed(spec):
    Tally.count = spec  # repro: allow[REPRO303]
    Tally.count += 1  # repro: allow[worker-class-state]


# repro: worker-entry
def not_flagged(spec):
    # Instance state is per-object and per-worker by construction.
    tally = Tally()
    tally.count = spec
    return tally
