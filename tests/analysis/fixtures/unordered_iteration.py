"""Fixture: REPRO104 iteration over unordered collections, flagged
and suppressed."""


def flagged(names, mapping):
    out = []
    for name in set(names):
        out.append(name)
    for key in mapping.keys() | {"extra"}:
        out.append(key)
    listed = list({1, 2, 3})
    comp = [x for x in frozenset(names)]
    union = list(set(names).union({"y"}))
    return out, listed, comp, union


def suppressed(names):
    for name in set(names):  # repro: allow[REPRO104]
        pass
    ok = list({1, 2})  # repro: allow[unordered-iteration]
    return ok


def not_flagged(names, mapping):
    # sorted() imposes an order, membership tests don't iterate, and
    # dict iteration is insertion-ordered.
    for name in sorted(set(names)):
        pass
    hit = "x" in set(names)
    for key in mapping:
        pass
    return hit
