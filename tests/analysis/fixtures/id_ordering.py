"""Fixture: REPRO105 id()-based ordering, flagged and suppressed."""


def flagged(items):
    a = sorted(items, key=id)
    b = min(items, key=id)
    c = max(items, key=id)
    return a, b, c


def suppressed(items):
    return sorted(items, key=id)  # repro: allow[REPRO105]


def not_flagged(items):
    # id() for identity comparison (not ordering) is fine.
    first = items[0]
    return [id(first)], sorted(items, key=str)
