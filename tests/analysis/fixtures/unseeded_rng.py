"""Fixture: REPRO102 module-level / unseeded RNG, flagged and
suppressed."""

import random
from random import randint

import numpy.random as npr


def flagged():
    a = random.random()
    b = random.randint(0, 10)
    c = random.seed()
    d = randint(0, 3)
    e = random.Random()
    f = npr.default_rng()
    g = npr.rand(3)
    return a, b, c, d, e, f, g


def suppressed():
    a = random.random()  # repro: allow[REPRO102]
    b = random.Random()  # repro: allow[unseeded-rng]
    return a, b


def not_flagged(seed):
    # Seeded constructions are the sanctioned pattern.
    rng = random.Random(seed)
    gen = npr.default_rng(seed)
    return rng.random(), gen
