"""Fixture: REPRO401 builtin sum() over an ndarray in an
equivalence-sensitive module, flagged and suppressed."""

# repro: equivalence-sensitive

import numpy as np


def flagged(block):
    arr = np.asarray(block)
    return sum(arr)


def suppressed(block):
    arr = np.asarray(block)
    a = sum(arr)  # repro: allow[REPRO401]
    b = sum(arr)  # repro: allow[builtin-sum-array]
    return a, b


def not_flagged(block):
    # The contract's sequential sum: left to right over .tolist().
    arr = np.asarray(block)
    total = 0.0
    for value in arr.tolist():
        total += value
    return total
