"""Fixture: REPRO403 accumulation across a set-ordered loop in an
equivalence-sensitive module, flagged and suppressed.

(The loop headers themselves also trip the determinism linter's
REPRO104 — same hazard seen from the other side.)
"""

# repro: equivalence-sensitive


def flagged(weights):
    total = 0.0
    for key in {"a", "b", "c"}:
        total += weights[key]
    product = 1.0
    for key in set(weights):
        product = product * weights[key]
    return total, product


def suppressed(weights):
    total = 0.0
    for key in {"a", "b"}:  # repro: allow[REPRO104]
        total += weights[key]  # repro: allow[REPRO403]
        total += weights[key]  # repro: allow[set-order-accumulation]
    return total


def not_flagged(weights):
    # Sorting the keys pins the fold order.
    total = 0.0
    for key in sorted(weights):
        total += weights[key]
    return total
