"""Fixture: REPRO103 OS entropy sources, flagged and suppressed."""

import os
import random
import secrets
import uuid


def flagged():
    a = os.urandom(16)
    b = uuid.uuid4()
    c = uuid.uuid1()
    d = secrets.token_hex(8)
    e = random.SystemRandom()
    return a, b, c, d, e


def suppressed():
    a = os.urandom(16)  # repro: allow[REPRO103]
    b = uuid.uuid4()  # repro: allow[os-entropy]
    return a, b


def not_flagged(payload):
    # Deterministic UUIDs derived from content are fine.
    return uuid.uuid5(uuid.NAMESPACE_URL, payload)
