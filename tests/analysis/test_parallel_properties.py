"""Property tests for the parallel-safety analyzer.

Two invariants, exercised over generated program shapes:

* worker-unsafe snippets (lambda factories into a process-boundary
  sink, module-global writes reachable from a worker entry, builtin
  reductions over arrays in equivalence-sensitive code) are ALWAYS
  flagged, whatever the surrounding identifiers look like; and
* the same snippet with a ``# repro: allow[...]`` on the finding line
  is NEVER flagged.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_parallel_source

# Identifier soup: safe (non-keyword) bases plus a numeric suffix so
# shrinking still lands on valid Python.
_BASES = ("worker", "run_cell", "execute", "score", "drain", "probe")
_idents = st.builds(
    "{}_{}".format, st.sampled_from(_BASES), st.integers(0, 99)
)
_globals = st.builds(
    "_{}_{}".format,
    st.sampled_from(("TOTAL", "CACHE", "RESULTS", "SEEN")),
    st.integers(0, 99),
)


def _codes(source):
    return {f.code for f in check_parallel_source(source)}


class TestPickleSafetyProperties:
    @settings(max_examples=50, deadline=None)
    @given(func=_idents, alias=st.booleans())
    def test_lambda_factory_always_flagged(self, func, alias):
        factory = "bad_factory" if alias else "lambda: None"
        prelude = "bad_factory = lambda: None\n\n" if alias else ""
        source = (
            "from repro.faults.campaigns import CampaignCellSpec\n\n"
            f"{prelude}"
            f"def {func}():\n"
            "    return CampaignCellSpec("
            f"controller_factory={factory})\n"
        )
        assert _codes(source) == {"REPRO201"}

    @settings(max_examples=50, deadline=None)
    @given(func=_idents)
    def test_allowed_lambda_factory_never_flagged(self, func):
        source = (
            "from repro.faults.campaigns import CampaignCellSpec\n\n"
            f"def {func}():\n"
            "    return CampaignCellSpec(controller_factory="
            "lambda: None)  # repro: allow[REPRO201]\n"
        )
        assert _codes(source) == set()


class TestWorkerSharedStateProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        entry=_idents,
        name=_globals,
        value=st.integers(-1000, 1000),
        via_helper=st.booleans(),
    )
    def test_global_write_always_flagged(
        self, entry, name, value, via_helper
    ):
        write = f"    global {name}\n    {name} = {value}\n"
        if via_helper:
            body = f"    {entry}_helper(spec)\n"
            helper = f"def {entry}_helper(spec):\n{write}\n"
        else:
            body = write
            helper = ""
        source = (
            f"{name} = 0\n\n"
            "# repro: worker-entry\n"
            f"def {entry}(spec):\n{body}\n"
            f"{helper}"
        )
        assert _codes(source) == {"REPRO301"}

    @settings(max_examples=50, deadline=None)
    @given(entry=_idents, name=_globals, value=st.integers(-1000, 1000))
    def test_allowed_global_write_never_flagged(self, entry, name, value):
        source = (
            f"{name} = 0\n\n"
            "# repro: worker-entry\n"
            f"def {entry}(spec):\n"
            f"    global {name}\n"
            f"    {name} = {value}  # repro: allow[REPRO301]\n"
        )
        assert _codes(source) == set()

    @settings(max_examples=50, deadline=None)
    @given(entry=_idents, name=_globals, value=st.integers(-1000, 1000))
    def test_local_write_never_flagged(self, entry, name, value):
        # Same shape, but the write targets a local: worker-private
        # state is exactly what the rule must not flag.
        source = (
            f"{name} = 0\n\n"
            "# repro: worker-entry\n"
            f"def {entry}(spec):\n"
            f"    local_{name} = {value}\n"
            f"    return local_{name}\n"
        )
        assert _codes(source) == set()


class TestReductionOrderProperties:
    @settings(max_examples=50, deadline=None)
    @given(func=_idents, arr=_idents)
    def test_builtin_sum_over_array_always_flagged(self, func, arr):
        source = (
            "# repro: equivalence-sensitive\n"
            "import numpy as np\n\n"
            f"def {func}(block):\n"
            f"    {arr} = np.asarray(block)\n"
            f"    return sum({arr})\n"
        )
        assert _codes(source) == {"REPRO401"}

    @settings(max_examples=50, deadline=None)
    @given(func=_idents, arr=_idents)
    def test_allowed_sum_never_flagged(self, func, arr):
        source = (
            "# repro: equivalence-sensitive\n"
            "import numpy as np\n\n"
            f"def {func}(block):\n"
            f"    {arr} = np.asarray(block)\n"
            f"    return sum({arr})  # repro: allow[REPRO401]\n"
        )
        assert _codes(source) == set()

    @settings(max_examples=50, deadline=None)
    @given(func=_idents, arr=_idents)
    def test_sum_outside_sensitive_module_never_flagged(self, func, arr):
        # Without the pragma the module is not equivalence-sensitive
        # and REPRO4xx must stay silent.
        source = (
            "import numpy as np\n\n"
            f"def {func}(block):\n"
            f"    {arr} = np.asarray(block)\n"
            f"    return sum({arr})\n"
        )
        assert _codes(source) == set()
