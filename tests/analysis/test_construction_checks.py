"""The graph checker runs at ``Simulator`` / ``CampaignRunner``
construction time.

``LogicalGraph`` and ``PhysicalPlan`` already fail fast on most
malformations, so these hooks are defense-in-depth: they must accept
every plan those types can produce, and they must actually *run* — a
checker-detected error (injected here, since well-formed types cannot
express one) aborts construction with :class:`repro.errors.GraphError`.
"""

import pytest

import repro.analysis.graphcheck as graphcheck
import repro.engine.simulator as simulator_module
from repro.core.manager import DS2Controller, ManagerConfig
from repro.core.policy import DS2Policy
from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    map_operator,
    sink,
    source,
)
from repro.dataflow.physical import PhysicalPlan
from repro.dataflow.state import SavepointModel
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.errors import GraphError
from repro.faults import CampaignRunner


def _graph():
    return LogicalGraph(
        [
            source("src", rate=RateSchedule.constant(1000.0)),
            map_operator("op", costs=CostModel(processing_cost=1e-4)),
            sink("snk"),
        ],
        [Edge("src", "op"), Edge("op", "snk")],
    )


def _simulator(graph):
    return Simulator(
        PhysicalPlan(graph, {"src": 1, "op": 2, "snk": 1}),
        FlinkRuntime(savepoint=SavepointModel.instant()),
        EngineConfig(tick=0.5, track_record_latency=False),
    )


def _campaign_runner(graph):
    def ds2():
        return DS2Controller(
            DS2Policy(graph),
            ManagerConfig(
                warmup_intervals=0,
                activation_intervals=1,
                target_ratio=1.0,
            ),
        )

    return CampaignRunner(
        graph=graph,
        runtime=FlinkRuntime(savepoint=SavepointModel.instant()),
        initial_parallelism={"src": 1, "op": 2, "snk": 1},
        controllers={"ds2": ds2},
        policy_interval=30.0,
        engine_config=EngineConfig(
            tick=0.5, track_record_latency=False
        ),
    )


class TestSimulatorConstruction:
    def test_valid_plan_constructs(self):
        _simulator(_graph())

    def test_checker_sees_the_plan(self, monkeypatch):
        calls = []
        original = simulator_module.ensure_valid_graph

        def spy(graph, **kwargs):
            calls.append((graph, kwargs))
            return original(graph, **kwargs)

        monkeypatch.setattr(
            simulator_module, "ensure_valid_graph", spy
        )
        graph = _graph()
        _simulator(graph)
        assert len(calls) == 1
        checked_graph, kwargs = calls[0]
        assert checked_graph is graph
        assert kwargs["parallelism"] == {
            "src": 1,
            "op": 2,
            "snk": 1,
        }

    def test_checker_error_aborts_construction(self, monkeypatch):
        def reject(graph, **kwargs):
            raise GraphError("injected: graph fails static checks")

        monkeypatch.setattr(
            simulator_module, "ensure_valid_graph", reject
        )
        with pytest.raises(GraphError, match="injected"):
            _simulator(_graph())


class TestCampaignRunnerConstruction:
    def test_valid_campaign_constructs(self):
        _campaign_runner(_graph())

    def test_checker_error_aborts_construction(self, monkeypatch):
        def reject(graph, **kwargs):
            raise GraphError("injected: graph fails static checks")

        monkeypatch.setattr(
            graphcheck, "ensure_valid_graph", reject
        )
        with pytest.raises(GraphError, match="injected"):
            _campaign_runner(_graph())
