"""Unit tests for the wordcount workload definitions."""

import pytest

from repro.workloads.wordcount import (
    COUNT,
    FLATMAP,
    HERON_COUNT_LIMIT,
    HERON_FLATMAP_LIMIT,
    HERON_SOURCE_RATE,
    SINK,
    SOURCE,
    WORDS_PER_SENTENCE,
    flink_wordcount_graph,
    flink_wordcount_initial_parallelism,
    heron_wordcount_graph,
    heron_wordcount_optimum,
)


class TestHeronVariant:
    def test_graph_shape(self):
        graph = heron_wordcount_graph()
        assert graph.topological_order() == (
            SOURCE, FLATMAP, COUNT, SINK
        )
        assert graph.sources() == (SOURCE,)
        assert graph.sinks() == (SINK,)

    def test_rate_limits_match_dhalion_benchmark(self):
        graph = heron_wordcount_graph()
        assert graph.operator(FLATMAP).rate_limit == pytest.approx(
            HERON_FLATMAP_LIMIT
        )
        assert graph.operator(COUNT).rate_limit == pytest.approx(
            HERON_COUNT_LIMIT
        )

    def test_optimum_is_consistent_with_limits(self):
        # The documented optimum must follow from the rate arithmetic:
        # ceil(source / flatmap_limit) and
        # ceil(source * words_per_sentence / count_limit).
        optimum = heron_wordcount_optimum()
        assert optimum[FLATMAP] == 10
        assert optimum[COUNT] == 20
        assert HERON_SOURCE_RATE / HERON_FLATMAP_LIMIT == pytest.approx(
            optimum[FLATMAP]
        )
        assert (
            HERON_SOURCE_RATE * WORDS_PER_SENTENCE / HERON_COUNT_LIMIT
        ) == pytest.approx(optimum[COUNT])

    def test_rate_limit_dominates_cpu_cost(self):
        graph = heron_wordcount_graph()
        spec = graph.operator(FLATMAP)
        assert spec.per_record_cost() == pytest.approx(
            1.0 / HERON_FLATMAP_LIMIT
        )


class TestFlinkVariant:
    def test_two_phase_schedule(self):
        graph = flink_wordcount_graph(phase_seconds=600.0)
        schedule = graph.operator(SOURCE).rate
        assert schedule.rate_at(0.0) == 2_000_000.0
        assert schedule.rate_at(599.0) == 2_000_000.0
        assert schedule.rate_at(600.0) == 1_000_000.0

    def test_initial_parallelism_matches_figure7(self):
        initial = flink_wordcount_initial_parallelism()
        assert initial[FLATMAP] == 10
        assert initial[COUNT] == 5

    def test_scaling_is_sublinear(self):
        graph = flink_wordcount_graph()
        costs = graph.operator(FLATMAP).costs
        assert costs.coordination_alpha > 0
        assert costs.effective_cost(20) > costs.effective_cost(10)

    def test_count_accumulates_state(self):
        graph = flink_wordcount_graph()
        assert graph.operator(COUNT).state_bytes_per_record > 0
