"""Unit tests for the extended Nexmark queries (Q4/Q6/Q7/Q9)."""

import pytest

from repro.errors import ReproError
from repro.workloads.nexmark.generator import (
    GeneratorConfig,
    NexmarkGenerator,
)
from repro.workloads.nexmark.model import Auction, Bid
from repro.workloads.nexmark.queries_ext import (
    EXTENDED_QUERIES,
    get_extended_query,
)
from repro.workloads.nexmark.semantics_ext import (
    q4_average_price_per_category,
    q6_average_selling_price_by_seller,
    q7_highest_bid_per_period,
    q9_winning_bids,
)


def auction(aid, seller=1, category=10, reserve=10.0, expires=100.0):
    return Auction(id=aid, seller=seller, category=category,
                   initial_bid=1.0, reserve=reserve, expires=expires,
                   timestamp=0.0)


def bid(aid, price, timestamp=1.0, bidder=1):
    return Bid(auction=aid, bidder=bidder, price=price,
               timestamp=timestamp)


class TestQ9:
    def test_highest_valid_bid_wins(self):
        auctions = [auction(1)]
        bids = [bid(1, 20.0), bid(1, 50.0), bid(1, 30.0)]
        winners = q9_winning_bids(auctions, bids)
        assert len(winners) == 1
        assert winners[0].bid.price == 50.0

    def test_reserve_price_enforced(self):
        auctions = [auction(1, reserve=100.0)]
        bids = [bid(1, 50.0)]
        assert q9_winning_bids(auctions, bids) == []

    def test_late_bids_excluded(self):
        auctions = [auction(1, expires=10.0)]
        bids = [bid(1, 500.0, timestamp=11.0)]
        assert q9_winning_bids(auctions, bids) == []

    def test_ties_go_to_earliest(self):
        auctions = [auction(1)]
        bids = [
            bid(1, 50.0, timestamp=2.0, bidder=2),
            bid(1, 50.0, timestamp=1.0, bidder=1),
        ]
        winners = q9_winning_bids(auctions, bids)
        assert winners[0].bid.bidder == 1

    def test_generator_stream_produces_winners(self):
        generator = NexmarkGenerator(GeneratorConfig(seed=11))
        events = generator.take(20_000)
        auctions = [e for e in events if isinstance(e, Auction)]
        bids = [e for e in events if isinstance(e, Bid)]
        winners = q9_winning_bids(auctions, bids)
        # Most auctions receive at least one valid bid.
        assert len(winners) > len(auctions) * 0.3


class TestQ4:
    def test_average_per_category(self):
        auctions = [
            auction(1, category=10),
            auction(2, category=10),
            auction(3, category=11),
        ]
        bids = [bid(1, 100.0), bid(2, 200.0), bid(3, 50.0)]
        averages = q4_average_price_per_category(auctions, bids)
        assert averages[10] == pytest.approx(150.0)
        assert averages[11] == pytest.approx(50.0)

    def test_empty(self):
        assert q4_average_price_per_category([], []) == {}


class TestQ6:
    def test_last_n_window(self):
        auctions = [
            auction(i, seller=1, expires=float(i)) for i in range(1, 5)
        ]
        bids = [
            bid(i, price=float(i * 100), timestamp=0.5)
            for i in range(1, 5)
        ]
        averages = q6_average_selling_price_by_seller(
            auctions, bids, last_n=2
        )
        # Last two closed auctions: 300 and 400.
        assert averages[1] == pytest.approx(350.0)


class TestQ7:
    def test_highest_per_period(self):
        bids = [
            bid(1, 10.0, timestamp=1.0),
            bid(1, 99.0, timestamp=5.0),
            bid(1, 50.0, timestamp=15.0),
        ]
        result = q7_highest_bid_per_period(bids, period=10.0)
        assert result[0][1].price == 99.0
        assert result[1][1].price == 50.0

    def test_empty(self):
        assert q7_highest_bid_per_period([]) == []


class TestExtendedDataflows:
    def test_registry(self):
        assert [q.name for q in EXTENDED_QUERIES] == [
            "Q4", "Q6", "Q7", "Q9",
        ]
        assert get_extended_query("q7").main_operator == "period_max"
        with pytest.raises(ReproError):
            get_extended_query("Q5")  # paper queries live elsewhere

    @pytest.mark.parametrize(
        "query", EXTENDED_QUERIES, ids=lambda q: q.name
    )
    def test_graphs_valid_on_both_runtimes(self, query):
        flink = query.flink_graph()
        timely = query.timely_graph()
        assert query.main_operator in flink.names
        assert set(flink.sources()) == set(query.flink_rates)
        assert set(timely.sources()) == set(query.timely_rates)

    def test_q9_join_arity(self):
        graph = get_extended_query("Q9").flink_graph()
        assert len(graph.upstream("winning_bids")) == 2
