"""Unit tests for the skewed workload builders."""

import pytest

from repro.workloads.skew import (
    PAPER_SKEW_LEVELS,
    flink_skewed_wordcount,
    heron_skewed_wordcount,
    skewed_wordcount_plan,
)
from repro.workloads.wordcount import COUNT, FLATMAP, heron_wordcount_graph


class TestSkewPlans:
    def test_paper_levels(self):
        assert PAPER_SKEW_LEVELS == (0.2, 0.5, 0.7)

    def test_count_receives_skewed_weights(self):
        graph = heron_wordcount_graph()
        plan = skewed_wordcount_plan(
            graph, {name: 1 for name in graph.names}, skew=0.5
        )
        plan = plan.with_parallelism({COUNT: 4})
        weights = plan.input_weights(COUNT)
        assert weights[0] == pytest.approx(0.5)
        assert sum(weights) == pytest.approx(1.0)

    def test_flatmap_stays_uniform(self):
        graph = heron_wordcount_graph()
        plan = skewed_wordcount_plan(
            graph, {name: 1 for name in graph.names}, skew=0.5
        )
        plan = plan.with_parallelism({FLATMAP: 4})
        weights = plan.input_weights(FLATMAP)
        assert all(w == pytest.approx(0.25) for w in weights)

    def test_heron_builder_defaults_underprovisioned(self):
        plan = heron_skewed_wordcount(skew=0.7)
        assert plan.parallelism_of(COUNT) == 1

    def test_flink_builder_has_slot_limit(self):
        plan = flink_skewed_wordcount(skew=0.2)
        assert plan.max_parallelism == 36
