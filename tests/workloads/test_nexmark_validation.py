"""Tests bridging the record-level semantics and the fluid dataflows.

The simulated dataflows' selectivity constants must agree with what the
actual query logic produces on a generated event stream; otherwise
DS2's Eq. 8 would propagate wrong ideal rates through the graph.
"""

import pytest

from repro.workloads.nexmark.validation import (
    SelectivityCheck,
    measure_selectivities,
    worst_relative_error,
)


@pytest.fixture(scope="module")
def checks():
    return measure_selectivities(events_count=50_000, seed=42)


class TestSelectivityConsistency:
    def test_all_queries_checked(self, checks):
        assert {c.query for c in checks} >= {"Q1", "Q2", "Q3", "Q9"}

    def test_configured_matches_measured(self, checks):
        for check in checks:
            assert check.relative_error < 0.15, (
                f"{check.query}/{check.operator}: configured "
                f"{check.configured} vs measured {check.measured}"
            )

    def test_worst_error_reported(self, checks):
        worst = worst_relative_error(checks)
        assert worst == max(c.relative_error for c in checks)

    def test_q1_is_exactly_one(self, checks):
        q1 = next(c for c in checks if c.query == "Q1")
        assert q1.measured == 1.0

    def test_relative_error_guards_zero(self):
        check = SelectivityCheck(
            query="X", operator="o", configured=0.0, measured=0.25
        )
        assert check.relative_error == 0.25
