"""Unit tests for the Nexmark event model and generator."""

import pytest

from repro.errors import ReproError
from repro.workloads.nexmark.generator import (
    AUCTION_PROPORTION,
    BID_PROPORTION,
    GeneratorConfig,
    NexmarkGenerator,
    PERSON_PROPORTION,
    TOTAL_PROPORTION,
)
from repro.workloads.nexmark.model import (
    Auction,
    Bid,
    EventKind,
    Person,
    kind_of,
)


class TestModel:
    def test_person_validation(self):
        with pytest.raises(ReproError):
            Person(id=-1, name="x", email="x", city="x", state="OR",
                   timestamp=0.0)

    def test_auction_expiry_validation(self):
        with pytest.raises(ReproError):
            Auction(id=1, seller=1, category=10, initial_bid=1.0,
                    reserve=2.0, expires=0.0, timestamp=5.0)

    def test_bid_validation(self):
        with pytest.raises(ReproError):
            Bid(auction=1, bidder=1, price=-5.0, timestamp=0.0)

    def test_kind_of(self):
        generator = NexmarkGenerator()
        events = generator.take(50)
        kinds = {kind_of(e) for e in events}
        assert kinds == {
            EventKind.PERSON, EventKind.AUCTION, EventKind.BID
        }

    def test_kind_of_rejects_non_event(self):
        with pytest.raises(ReproError):
            kind_of("not an event")


class TestGenerator:
    def test_deterministic_given_seed(self):
        a = NexmarkGenerator(GeneratorConfig(seed=1)).take(500)
        b = NexmarkGenerator(GeneratorConfig(seed=1)).take(500)
        assert a == b

    def test_different_seeds_differ(self):
        a = NexmarkGenerator(GeneratorConfig(seed=1)).take(500)
        b = NexmarkGenerator(GeneratorConfig(seed=2)).take(500)
        assert a != b

    def test_beam_proportions(self):
        events = NexmarkGenerator().take(TOTAL_PROPORTION * 100)
        persons = sum(1 for e in events if isinstance(e, Person))
        auctions = sum(1 for e in events if isinstance(e, Auction))
        bids = sum(1 for e in events if isinstance(e, Bid))
        assert persons == PERSON_PROPORTION * 100
        assert auctions == AUCTION_PROPORTION * 100
        assert bids == BID_PROPORTION * 100

    def test_timestamps_monotone_at_rate(self):
        generator = NexmarkGenerator(
            GeneratorConfig(events_per_second=100.0)
        )
        events = generator.take(200)
        stamps = [e.timestamp for e in events]
        assert stamps == sorted(stamps)
        assert stamps[100] == pytest.approx(1.0)

    def test_bids_reference_existing_auctions(self):
        generator = NexmarkGenerator()
        events = generator.take(5000)
        auction_ids = {e.id for e in events if isinstance(e, Auction)}
        bids = [e for e in events if isinstance(e, Bid)]
        referenced = sum(1 for b in bids if b.auction in auction_ids)
        assert referenced / len(bids) > 0.99

    def test_auctions_reference_existing_sellers(self):
        generator = NexmarkGenerator()
        events = generator.take(5000)
        person_ids = {e.id for e in events if isinstance(e, Person)}
        auctions = [e for e in events if isinstance(e, Auction)]
        referenced = sum(
            1 for a in auctions if a.seller in person_ids
        )
        assert referenced / len(auctions) > 0.9

    def test_hot_auction_skew(self):
        generator = NexmarkGenerator(
            GeneratorConfig(hot_auction_ratio=0.9, seed=3)
        )
        bids = generator.bids(2000)
        from collections import Counter
        counts = Counter(b.auction for b in bids)
        top_share = counts.most_common(1)[0][1] / len(bids)
        # With 90% hot ratio the hottest auctions dominate; the "hot"
        # auction rotates as new auctions appear, so any single id's
        # share is smaller but still far above uniform.
        assert top_share > 0.01

    def test_typed_takes(self):
        generator = NexmarkGenerator()
        assert len(generator.persons(10)) == 10
        assert len(generator.auctions(10)) == 10
        assert len(generator.bids(10)) == 10

    def test_take_rejects_negative(self):
        with pytest.raises(ReproError):
            NexmarkGenerator().take(-1)

    def test_config_validation(self):
        with pytest.raises(ReproError):
            GeneratorConfig(events_per_second=0.0)
        with pytest.raises(ReproError):
            GeneratorConfig(hot_auction_ratio=1.5)

    def test_stream_is_endless(self):
        generator = NexmarkGenerator()
        stream = generator.stream()
        first = next(stream)
        second = next(stream)
        assert first is not second
