"""Unit tests for the reference Nexmark query implementations."""

import pytest

from repro.workloads.nexmark.generator import (
    GeneratorConfig,
    NexmarkGenerator,
)
from repro.workloads.nexmark.model import (
    Auction,
    Bid,
    Person,
    Q3_CATEGORY,
    USD_TO_EUR,
)
from repro.workloads.nexmark.semantics import (
    measured_selectivity,
    q1_currency_conversion,
    q2_selection,
    q3_local_item_suggestion,
    q5_hot_items,
    q8_monitor_new_users,
    q11_user_sessions,
)


def bid(auction=1, bidder=1, price=100.0, timestamp=0.0):
    return Bid(auction=auction, bidder=bidder, price=price,
               timestamp=timestamp)


def person(pid, state="OR", timestamp=0.0):
    return Person(id=pid, name=f"p{pid}", email="e", city="c",
                  state=state, timestamp=timestamp)


def auction(aid, seller, category=Q3_CATEGORY, timestamp=0.0):
    return Auction(id=aid, seller=seller, category=category,
                   initial_bid=1.0, reserve=1.0,
                   expires=timestamp + 60.0, timestamp=timestamp)


class TestQ1:
    def test_converts_prices(self):
        result = q1_currency_conversion([bid(price=100.0)])
        assert result[0].price_eur == pytest.approx(100.0 * USD_TO_EUR)

    def test_selectivity_exactly_one(self):
        bids = [bid(price=p) for p in (1.0, 2.0, 3.0)]
        assert len(q1_currency_conversion(bids)) == len(bids)


class TestQ2:
    def test_keeps_only_matching_auctions(self):
        bids = [bid(auction=a) for a in (0, 1, 123, 246, 300)]
        selected = q2_selection(bids, auction_modulo=123)
        assert [b.auction for b in selected] == [0, 123, 246]

    def test_selectivity_near_1_over_123(self):
        generator = NexmarkGenerator(GeneratorConfig(seed=5))
        bids = generator.bids(20_000)
        selected = q2_selection(bids)
        ratio = measured_selectivity(len(bids), len(selected))
        assert ratio < 0.05  # far below 1, in the ballpark of 1/123


class TestQ3:
    def test_joins_local_sellers_with_category(self):
        persons = [person(1, "OR"), person(2, "NY")]
        auctions = [
            auction(10, seller=1),                    # match
            auction(11, seller=2),                    # wrong state
            auction(12, seller=1, category=15),       # wrong category
        ]
        listings = q3_local_item_suggestion(persons, auctions)
        assert len(listings) == 1
        assert listings[0].auction_id == 10
        assert listings[0].state == "OR"

    def test_empty_inputs(self):
        assert q3_local_item_suggestion([], []) == []


class TestQ5:
    def test_hottest_auction_per_window(self):
        bids = [
            bid(auction=1, timestamp=0.5),
            bid(auction=1, timestamp=1.0),
            bid(auction=2, timestamp=1.5),
        ]
        result = q5_hot_items(bids, window=2.0, slide=2.0)
        window_end, hottest = result[0]
        assert window_end == 2.0
        assert hottest == [1]

    def test_ties_reported_together(self):
        bids = [
            bid(auction=1, timestamp=0.1),
            bid(auction=2, timestamp=0.2),
        ]
        result = q5_hot_items(bids, window=2.0, slide=2.0)
        assert result[0][1] == [1, 2]

    def test_empty(self):
        assert q5_hot_items([]) == []


class TestQ8:
    def test_matches_same_window_registration_and_auction(self):
        persons = [person(1, timestamp=1.0), person(2, timestamp=15.0)]
        auctions = [
            auction(10, seller=1, timestamp=2.0),   # same window as p1
            auction(11, seller=2, timestamp=5.0),   # before p2 registers
        ]
        result = q8_monitor_new_users(persons, auctions, window=10.0)
        matched = {pid for _, pids in result for pid in pids}
        assert matched == {1}

    def test_empty(self):
        assert q8_monitor_new_users([], []) == []


class TestQ11:
    def test_sessions_split_on_gap(self):
        bids = [
            bid(bidder=1, timestamp=0.0),
            bid(bidder=1, timestamp=1.0),
            bid(bidder=1, timestamp=10.0),  # > 2 s gap: new session
        ]
        sessions = q11_user_sessions(bids, gap=2.0)
        assert len(sessions[1]) == 2
        assert sessions[1][0] == (0.0, 1.0, 2)
        assert sessions[1][1] == (10.0, 10.0, 1)

    def test_per_user_isolation(self):
        bids = [
            bid(bidder=1, timestamp=0.0),
            bid(bidder=2, timestamp=0.5),
        ]
        sessions = q11_user_sessions(bids, gap=2.0)
        assert set(sessions) == {1, 2}

    def test_session_counts_conserve_bids(self):
        generator = NexmarkGenerator(GeneratorConfig(seed=9))
        bids = generator.bids(2000)
        sessions = q11_user_sessions(bids, gap=2.0)
        total = sum(
            count
            for user_sessions in sessions.values()
            for _, _, count in user_sessions
        )
        assert total == len(bids)


class TestMeasuredSelectivity:
    def test_guarded_division(self):
        assert measured_selectivity(0, 5) == 0.0
        assert measured_selectivity(10, 5) == 0.5
