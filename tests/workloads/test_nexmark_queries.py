"""Unit tests for the simulated Nexmark query dataflows."""

import math

import pytest

from repro.errors import ReproError
from repro.workloads.nexmark.queries import (
    ALL_QUERIES,
    ALPHA,
    FLINK_OVERHEAD,
    NexmarkQuery,
    calibrated_cost,
    get_query,
)


class TestRegistry:
    def test_six_queries(self):
        assert [q.name for q in ALL_QUERIES] == [
            "Q1", "Q2", "Q3", "Q5", "Q8", "Q11",
        ]

    def test_get_query_case_insensitive(self):
        assert get_query("q5").name == "Q5"

    def test_get_query_unknown(self):
        with pytest.raises(ReproError):
            get_query("Q99")

    def test_paper_indicated_parallelism(self):
        indicated = {
            q.name: q.indicated_flink for q in ALL_QUERIES
        }
        # Figure 8 captions.
        assert indicated == {
            "Q1": 16, "Q2": 14, "Q3": 20, "Q5": 16, "Q8": 10, "Q11": 28,
        }
        assert all(q.indicated_timely == 4 for q in ALL_QUERIES)

    def test_table3_rates(self):
        q3 = get_query("Q3")
        assert q3.flink_rates == {
            "auctions": 500_000, "persons": 100_000,
        }
        assert q3.timely_rates == {
            "auctions": 3_000_000, "persons": 800_000,
        }
        assert get_query("Q1").flink_rates == {"bids": 4_000_000}


class TestGraphs:
    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
    def test_flink_graph_is_valid(self, query):
        graph = query.flink_graph()
        assert query.main_operator in graph.names
        assert graph.sources()
        assert graph.sinks()
        assert set(graph.sources()) == set(query.flink_rates)

    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
    def test_timely_graph_is_valid(self, query):
        graph = query.timely_graph()
        assert set(graph.sources()) == set(query.timely_rates)

    def test_q3_has_join_with_two_inputs(self):
        graph = get_query("Q3").flink_graph()
        assert len(graph.upstream("incremental_join")) == 2

    def test_q8_window_join_has_two_inputs(self):
        graph = get_query("Q8").flink_graph()
        assert len(graph.upstream("window_join")) == 2

    def test_window_queries_have_window_specs(self):
        for name, kind in (("Q5", "sliding"), ("Q8", "tumbling"),
                           ("Q11", "session")):
            query = get_query(name)
            graph = query.flink_graph()
            spec = graph.operator(query.main_operator)
            assert spec.window is not None
            assert spec.window.kind.value == kind

    def test_initial_parallelism_only_scales_scalable(self):
        query = get_query("Q3")
        graph = query.flink_graph()
        initial = query.initial_parallelism(graph, 12)
        assert initial["incremental_join"] == 12
        assert initial["persons"] == 1
        assert initial["sink"] == 1

    def test_rate_override(self):
        query = get_query("Q1")
        graph = query.flink_graph(rates={"bids": 1000.0})
        assert graph.operator("bids").rate.rate_at(0.0) == 1000.0


class TestCalibration:
    def test_calibrated_cost_inverts_the_model(self):
        rate = 1_000_000.0
        cost = calibrated_cost(rate, 15.5)
        p_ref = 16
        required = (
            rate * cost * (1 + ALPHA * (p_ref - 1)) * (1 + FLINK_OVERHEAD)
        )
        assert required == pytest.approx(15.5)
        assert math.ceil(required) == 16

    def test_calibrated_cost_validation(self):
        with pytest.raises(ReproError):
            calibrated_cost(0.0, 4.0)
        with pytest.raises(ReproError):
            calibrated_cost(1000.0, 0.0)

    @pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
    def test_main_operator_requirement_matches_indication(self, query):
        """The steady-state work requirement of the main operator (per
        Eq. 7 with true rates = 1/cost) lands exactly on the paper's
        indicated parallelism."""
        graph = query.flink_graph()
        spec = graph.operator(query.main_operator)
        arrival = 0.0
        for up in graph.upstream(query.main_operator):
            up_spec = graph.operator(up)
            if up_spec.is_source:
                arrival += query.flink_rates[up]
            else:
                # One filter level is enough for these graphs.
                parent = graph.upstream(up)[0]
                arrival += (
                    query.flink_rates[parent]
                    * up_spec.long_run_selectivity
                )
        p = query.indicated_flink
        coordination = 1 + spec.costs.coordination_alpha * (p - 1)
        per_record = spec.per_record_cost()
        required = (
            arrival * per_record * coordination * (1 + FLINK_OVERHEAD)
        )
        assert math.ceil(required - 1e-9) == p
