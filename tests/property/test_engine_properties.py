"""Property-based tests of engine invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    flatmap,
    sink,
    source,
)
from repro.dataflow.physical import PhysicalPlan
from repro.engine.allocation import fair_allocate
from repro.engine.buffers import Queue
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig, Simulator


class TestFairAllocateProperties:
    @given(
        total=st.floats(min_value=0.0, max_value=1e6),
        desires=st.lists(
            st.floats(min_value=0.0, max_value=1e5),
            min_size=0,
            max_size=20,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_feasibility(self, total, desires):
        allocation = fair_allocate(total, desires)
        assert len(allocation) == len(desires)
        # Never exceeds the shared capacity.
        assert sum(allocation) <= total * (1 + 1e-9) + 1e-9
        # Never exceeds any individual desire; never negative.
        for granted, desired in zip(allocation, desires):
            assert -1e-12 <= granted <= desired + 1e-9

    @given(
        total=st.floats(min_value=0.1, max_value=1e6),
        desires=st.lists(
            st.floats(min_value=0.1, max_value=1e5),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_work_conserving(self, total, desires):
        """All of min(total, sum(desires)) is handed out."""
        allocation = fair_allocate(total, desires)
        expected = min(total, sum(desires))
        assert sum(allocation) >= expected * (1 - 1e-9) - 1e-9

    @given(
        total=st.floats(min_value=0.1, max_value=100.0),
        count=st.integers(min_value=2, max_value=10),
        demand=st.floats(min_value=50.0, max_value=1000.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_equal_demands_get_equal_shares(self, total, count, demand):
        allocation = fair_allocate(total, [demand] * count)
        assert max(allocation) - min(allocation) < 1e-6


class TestQueueProperties:
    @given(
        operations=st.lists(
            st.tuples(st.booleans(), st.floats(min_value=0.0,
                                               max_value=1000.0)),
            max_size=60,
        ),
        capacity=st.one_of(
            st.none(), st.floats(min_value=1.0, max_value=500.0)
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_conservation_under_random_operations(
        self, operations, capacity
    ):
        queue = Queue(capacity=capacity)
        for is_push, amount in operations:
            if is_push:
                queue.push(amount)
            else:
                queue.pop(amount)
            queue.check_conservation()
            assert queue.length >= 0
            if capacity is not None:
                assert queue.length <= capacity + 1e-9


class TestSimulatorProperties:
    @given(
        rate=st.floats(min_value=100.0, max_value=50_000.0),
        cost=st.floats(min_value=1e-5, max_value=1e-3),
        parallelism=st.integers(min_value=1, max_value=8),
        selectivity=st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_observed_never_exceeds_true_rates(
        self, rate, cost, parallelism, selectivity
    ):
        """0 <= Wu <= W implies observed <= true for every instance —
        the inequality section 3.2 of the paper derives."""
        graph = LogicalGraph(
            [
                source("src", rate=RateSchedule.constant(rate)),
                flatmap("op", costs=CostModel(processing_cost=cost),
                        selectivity=selectivity),
                sink("snk"),
            ],
            [Edge("src", "op"), Edge("op", "snk")],
        )
        sim = Simulator(
            PhysicalPlan(graph, {"op": parallelism}),
            FlinkRuntime(),
            EngineConfig(tick=0.2, track_record_latency=False),
        )
        sim.run_for(8.0)
        window = sim.collect_metrics()
        for counters in window.instances.values():
            assert counters.useful_time <= counters.observed_time + 1e-9
            true_rate = counters.true_processing_rate
            observed = counters.observed_processing_rate
            if true_rate is not None and observed is not None:
                assert observed <= true_rate * (1 + 1e-6)

    @given(
        rate=st.floats(min_value=100.0, max_value=20_000.0),
        cost=st.floats(min_value=1e-5, max_value=1e-3),
        parallelism=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_throughput_bounded_by_capacity_and_rate(
        self, rate, cost, parallelism
    ):
        """The sink never consumes faster than min(source rate,
        operator capacity)."""
        graph = LogicalGraph(
            [
                source("src", rate=RateSchedule.constant(rate)),
                flatmap("op", costs=CostModel(processing_cost=cost),
                        selectivity=1.0),
                sink("snk"),
            ],
            [Edge("src", "op"), Edge("op", "snk")],
        )
        sim = Simulator(
            PhysicalPlan(graph, {"op": parallelism}),
            FlinkRuntime(),
            EngineConfig(
                tick=0.2,
                track_record_latency=False,
                instrumentation_enabled=False,
            ),
        )
        sim.run_for(10.0)
        window = sim.collect_metrics()
        throughput = window.observed_processing_rate("snk")
        capacity = parallelism / cost
        assert throughput <= min(rate, capacity) * 1.02 + 1.0
