"""Property-based tests for the scaling-curve learner."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.learning import ScalingCurve, ScalingCurveLearner
from repro.engine.allocation import fair_allocate

base_rates = st.floats(min_value=10.0, max_value=1e6)
alphas = st.floats(min_value=0.0, max_value=0.2)


@given(base_rate=base_rates, alpha=alphas)
@settings(max_examples=150, deadline=None)
def test_fit_recovers_exact_law(base_rate, alpha):
    """Fitting noiseless samples of the law recovers its parameters."""
    learner = ScalingCurveLearner()
    for p in (1, 3, 7, 15, 31):
        learner.observe(
            "op", p, base_rate / (1 + alpha * (p - 1))
        )
    curve = learner.curve_for("op")
    assert curve is not None
    assert abs(curve.base_rate - base_rate) / base_rate < 1e-6
    assert abs(curve.alpha - alpha) < 1e-6


@given(
    base_rate=base_rates,
    alpha=alphas,
    target_factor=st.floats(min_value=0.1, max_value=50.0),
)
@settings(max_examples=150, deadline=None)
def test_parallelism_for_is_minimal_and_sufficient(
    base_rate, alpha, target_factor
):
    """``parallelism_for`` inverts the law exactly: p suffices and
    p−1 does not (when reachable)."""
    curve = ScalingCurve(
        base_rate=base_rate, alpha=alpha, observations=5
    )
    target = base_rate * target_factor
    p = curve.parallelism_for(target)
    if p is None:
        # Saturated: even huge parallelism cannot reach the target.
        assert alpha > 0
        assert base_rate / alpha <= target
        return
    assert p * curve.rate_at(p) >= target * (1 - 1e-9)
    if p > 1:
        assert (p - 1) * curve.rate_at(p - 1) < target * (1 + 1e-9)


@given(
    base_rate=base_rates,
    alpha=alphas,
    low=st.floats(min_value=1.0, max_value=1e5),
    factor=st.floats(min_value=1.0, max_value=10.0),
)
@settings(max_examples=100, deadline=None)
def test_parallelism_for_is_monotone(base_rate, alpha, low, factor):
    curve = ScalingCurve(
        base_rate=base_rate, alpha=alpha, observations=5
    )
    p_low = curve.parallelism_for(low)
    p_high = curve.parallelism_for(low * factor)
    if p_low is None:
        assert p_high is None
    elif p_high is not None:
        assert p_high >= p_low


@given(
    total_a=st.floats(min_value=0.0, max_value=1e4),
    extra=st.floats(min_value=0.0, max_value=1e4),
    desires=st.lists(
        st.floats(min_value=0.0, max_value=1e4), min_size=1, max_size=12
    ),
)
@settings(max_examples=150, deadline=None)
def test_fair_allocate_monotone_in_total(total_a, extra, desires):
    """More shared capacity never reduces anyone's allocation."""
    first = fair_allocate(total_a, desires)
    second = fair_allocate(total_a + extra, desires)
    for a, b in zip(first, second):
        assert b >= a - 1e-9
