"""Property-based tests of the DS2 model (paper section 3.4).

Property 1 (no overshoot): under linear scaling, a scale-up decision
never over-provisions — π is the minimum parallelism that sustains the
target rate.

Property 2 (no undershoot): a scale-down decision never
under-provisions — π still sustains the target rate.

Together they imply monotone, oscillation-free convergence.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import compute_optimal_parallelism
from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    flatmap,
    map_operator,
    sink,
    source,
)
from tests.conftest import make_window

rates = st.floats(min_value=10.0, max_value=1e7)
selectivities = st.floats(min_value=0.01, max_value=50.0)
parallelisms = st.integers(min_value=1, max_value=64)
#: Per-instance capacity as a fraction of the operator's target rate.
#: Bounded below so recommendations stay within realistic cluster
#: sizes (at most ~100 instances) — beyond that, building the
#: re-evaluation window materializes millions of per-instance counters
#: and the ceil of a 10^7-scale ratio flickers in the last float ulp.
capacity_ratios = st.floats(min_value=0.01, max_value=10.0)


def chain(selectivity):
    return LogicalGraph(
        [
            source("src", rate=RateSchedule.constant(1.0)),
            flatmap("a", costs=CostModel(processing_cost=1e-6),
                    selectivity=selectivity),
            map_operator("b", costs=CostModel(processing_cost=1e-6)),
            sink("snk"),
        ],
        [Edge("src", "a"), Edge("a", "b"), Edge("b", "snk")],
    )


def window_with(graph, per_instance_rates, selectivity, parallelism):
    """Every instance of ``a``/``b`` measured at the given true rate."""
    counters = {}
    for op in ("a", "b"):
        rate = per_instance_rates[op]
        sel = selectivity if op == "a" else 1.0
        for index in range(parallelism[op]):
            counters[(op, index)] = (rate, rate * sel, 1.0)
    counters[("snk", 0)] = (1e9, 0.0, 1.0)
    return make_window(counters)


@given(
    source_rate=rates,
    ratio=capacity_ratios,
    selectivity=selectivities,
    current=parallelisms,
)
@settings(max_examples=150, deadline=None)
def test_no_overshoot_and_no_undershoot(
    source_rate, ratio, selectivity, current
):
    """π is the *minimum* parallelism sustaining the target under the
    linear-scaling assumption: π·r >= target and (π−1)·r < target."""
    per_instance = source_rate * max(selectivity, 1.0) * ratio
    graph = chain(selectivity)
    window = window_with(
        graph,
        {"a": per_instance, "b": per_instance},
        selectivity,
        {"a": current, "b": current},
    )
    result = compute_optimal_parallelism(
        graph, window, {"src": source_rate}
    )
    for op, target in (
        ("a", source_rate),
        ("b", source_rate * selectivity),
    ):
        pi = result.estimates[op].optimal_parallelism
        # Sustains the target (no undershoot):
        assert pi * per_instance >= target * (1 - 1e-9)
        # Minimal (no overshoot): one fewer instance would fall short.
        if pi > 1:
            assert (pi - 1) * per_instance < target * (1 + 1e-9)


@given(
    source_rate=rates,
    ratio=capacity_ratios,
    selectivity=selectivities,
    current=parallelisms,
)
@settings(max_examples=100, deadline=None)
def test_fixed_point_is_stable(
    source_rate, ratio, selectivity, current
):
    """Re-evaluating the model at its own recommendation proposes the
    same configuration again (no oscillation under linear scaling)."""
    per_instance = source_rate * max(selectivity, 1.0) * ratio
    graph = chain(selectivity)
    window = window_with(
        graph,
        {"a": per_instance, "b": per_instance},
        selectivity,
        {"a": current, "b": current},
    )
    first = compute_optimal_parallelism(
        graph, window, {"src": source_rate}
    )
    recommended = {
        op: first.estimates[op].optimal_parallelism for op in ("a", "b")
    }
    window2 = window_with(
        graph,
        {"a": per_instance, "b": per_instance},
        selectivity,
        recommended,
    )
    second = compute_optimal_parallelism(
        graph, window2, {"src": source_rate}
    )
    for op in ("a", "b"):
        assert (
            second.estimates[op].optimal_parallelism == recommended[op]
        )


@given(
    source_rate=rates,
    ratio=capacity_ratios,
    factor=st.floats(min_value=1.0, max_value=10.0),
)
@settings(max_examples=100, deadline=None)
def test_parallelism_monotone_in_target_rate(
    source_rate, ratio, factor
):
    """A higher target rate never yields a lower π."""
    per_instance = source_rate * ratio
    graph = chain(1.0)
    window = window_with(
        graph, {"a": per_instance, "b": per_instance}, 1.0,
        {"a": 1, "b": 1},
    )
    low = compute_optimal_parallelism(graph, window, {"src": source_rate})
    high = compute_optimal_parallelism(
        graph, window, {"src": source_rate * factor}
    )
    for op in ("a", "b"):
        assert (
            high.estimates[op].optimal_parallelism
            >= low.estimates[op].optimal_parallelism
        )


@given(
    source_rate=rates,
    ratio=capacity_ratios,
    compensation=st.floats(min_value=1.0, max_value=2.0),
)
@settings(max_examples=100, deadline=None)
def test_compensation_never_reduces_parallelism(
    source_rate, ratio, compensation
):
    per_instance = source_rate * ratio
    graph = chain(1.0)
    window = window_with(
        graph, {"a": per_instance, "b": per_instance}, 1.0,
        {"a": 1, "b": 1},
    )
    plain = compute_optimal_parallelism(
        graph, window, {"src": source_rate}
    )
    boosted = compute_optimal_parallelism(
        graph, window, {"src": source_rate},
        rate_compensation=compensation,
    )
    for op in ("a", "b"):
        assert (
            boosted.estimates[op].optimal_parallelism
            >= plain.estimates[op].optimal_parallelism
        )


@given(
    ratio=capacity_ratios,
    source_rate=rates,
    current=parallelisms,
)
@settings(max_examples=100, deadline=None)
def test_global_parallelism_bounds(ratio, source_rate, current):
    """The Timely worker count is at least the largest single-operator
    requirement and at most the sum of ceilings."""
    per_instance = source_rate * ratio
    graph = chain(1.0)
    window = window_with(
        graph, {"a": per_instance, "b": per_instance}, 1.0,
        {"a": current, "b": current},
    )
    result = compute_optimal_parallelism(
        graph, window, {"src": source_rate}
    )
    per_op = [
        est.optimal_parallelism for est in result.estimates.values()
    ]
    total = result.global_parallelism()
    assert total >= max(
        math.ceil(est.optimal_parallelism_raw - 1e-9)
        for est in result.estimates.values()
    )
    assert total <= sum(per_op)
