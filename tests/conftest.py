"""Shared fixtures: small graphs, plans, and metric windows."""

from __future__ import annotations

import pytest

from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    filter_operator,
    join,
    map_operator,
    sink,
    source,
)
from repro.dataflow.physical import InstanceId, PhysicalPlan
from repro.metrics import InstanceCounters, MetricsWindow


@pytest.fixture
def chain_graph() -> LogicalGraph:
    """source -> worker -> sink with simple costs."""
    return LogicalGraph(
        operators=[
            source("src", rate=RateSchedule.constant(1000.0)),
            map_operator("worker", costs=CostModel(processing_cost=1e-3)),
            sink("snk"),
        ],
        edges=[Edge("src", "worker"), Edge("worker", "snk")],
    )


@pytest.fixture
def diamond_graph() -> LogicalGraph:
    """source fanning out to two branches joined before the sink."""
    return LogicalGraph(
        operators=[
            source("src", rate=RateSchedule.constant(1000.0)),
            map_operator("left", costs=CostModel(processing_cost=1e-3)),
            filter_operator(
                "right",
                costs=CostModel(processing_cost=5e-4),
                pass_ratio=0.5,
            ),
            join("merge", costs=CostModel(processing_cost=1e-3),
                 selectivity=1.0),
            sink("snk"),
        ],
        edges=[
            Edge("src", "left"),
            Edge("src", "right"),
            Edge("left", "merge"),
            Edge("right", "merge"),
            Edge("merge", "snk"),
        ],
    )


@pytest.fixture
def chain_plan(chain_graph: LogicalGraph) -> PhysicalPlan:
    return PhysicalPlan(
        chain_graph, {"src": 1, "worker": 2, "snk": 1}
    )


def make_window(
    counters: dict,
    start: float = 0.0,
    end: float = 10.0,
    **kwargs,
) -> MetricsWindow:
    """Build a MetricsWindow from {(op, idx): (pulled, pushed, useful)}
    with waiting filled in as the window remainder."""
    duration = end - start
    instances = {}
    for (op, idx), (pulled, pushed, useful) in counters.items():
        instances[InstanceId(op, idx)] = InstanceCounters(
            records_pulled=pulled,
            records_pushed=pushed,
            useful_time=useful,
            waiting_time=duration - useful,
            observed_time=duration,
        )
    return MetricsWindow(
        start=start, end=end, instances=instances, **kwargs
    )
