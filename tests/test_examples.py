"""Smoke tests: the example scripts run end-to-end.

The heavier examples are exercised with scaled-down parameters by
calling their building blocks; the quickstart runs verbatim.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


class TestExampleScripts:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "dynamic_scaling.py",
            "dhalion_comparison.py",
            "nexmark_convergence.py",
            "skew_and_baselines.py",
        } <= names

    @pytest.mark.slow
    def test_quickstart_runs_verbatim(self):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "flatmap=10, count=20" in proc.stdout

    def test_strip_chart_renders(self):
        sys.path.insert(0, str(EXAMPLES))
        try:
            from dynamic_scaling import strip_chart
        finally:
            sys.path.pop(0)
        chart = strip_chart(
            [(float(t), float(t % 7)) for t in range(100)],
            width=40,
            height=5,
        )
        lines = chart.splitlines()
        assert len(lines) == 7
        assert any("#" in line for line in lines)
        assert strip_chart([]) == "(no samples)"
