"""FaultSchedule ordering, queries, and the --faults grammar."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults import (
    FaultSchedule,
    HealthCorruption,
    InstanceCrash,
    MetricCorruption,
    MetricDropout,
    MetricLag,
    RescaleFailure,
    parse_faults,
)


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule([
            InstanceCrash(time=50.0, operator="b"),
            MetricDropout(time=10.0, duration=5.0, operator="a"),
            RescaleFailure(time=30.0),
        ])
        assert [e.time for e in schedule.events] == [10.0, 30.0, 50.0]

    def test_rejects_non_events(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule(["crash@10:a"])  # strings must be parsed

    def test_one_shots_between(self):
        crash = InstanceCrash(time=50.0, operator="b")
        dropout = MetricDropout(time=40.0, duration=100.0, operator="a")
        schedule = FaultSchedule([crash, dropout])
        assert schedule.one_shots_between(0.0, 49.0) == []
        assert schedule.one_shots_between(0.0, 50.0) == [crash]
        assert schedule.one_shots_between(50.0, 60.0) == []

    def test_active_filters_by_kind(self):
        dropout = MetricDropout(time=10.0, duration=10.0, operator="a")
        lag = MetricLag(time=15.0, duration=10.0)
        schedule = FaultSchedule([dropout, lag])
        assert schedule.active(5.0) == []
        assert schedule.active(12.0) == [dropout]
        assert schedule.active(17.0) == [dropout, lag]
        assert schedule.active(17.0, MetricLag) == [lag]
        assert schedule.active(21.0) == [lag]

    def test_equality_includes_seed(self):
        events = [InstanceCrash(time=1.0, operator="a")]
        assert FaultSchedule(events, seed=1) == FaultSchedule(
            events, seed=1
        )
        assert FaultSchedule(events, seed=1) != FaultSchedule(
            events, seed=2
        )

    def test_rng_for_is_deterministic(self):
        event = MetricCorruption(
            time=0.0, duration=5.0, operator="a", amplitude=0.5
        )
        schedule = FaultSchedule([event], seed=42)
        first = schedule.rng_for(event, salt=10.0).random()
        again = schedule.rng_for(event, salt=10.0).random()
        other_salt = schedule.rng_for(event, salt=20.0).random()
        assert first == again
        assert first != other_salt

    def test_rng_depends_on_seed(self):
        event = MetricCorruption(
            time=0.0, duration=5.0, operator="a", amplitude=0.5
        )
        one = FaultSchedule([event], seed=1).rng_for(event).random()
        two = FaultSchedule([event], seed=2).rng_for(event).random()
        assert one != two


class TestParseFaults:
    def test_full_grammar(self):
        schedule = parse_faults(
            "crash@600:flatmap#2,"
            "dropout@300+180:source*0.5,"
            "lag@100+60,"
            "corrupt@50+25:count*0.3,"
            "rescale-fail@0:timeout*2",
            seed=9,
        )
        assert schedule.seed == 9
        by_type = {type(e).__name__: e for e in schedule.events}
        crash = by_type["InstanceCrash"]
        assert (crash.time, crash.operator, crash.index) == (
            600.0, "flatmap", 2,
        )
        dropout = by_type["MetricDropout"]
        assert (dropout.operator, dropout.duration, dropout.fraction) == (
            "source", 180.0, 0.5,
        )
        lag = by_type["MetricLag"]
        assert (lag.time, lag.duration) == (100.0, 60.0)
        corrupt = by_type["MetricCorruption"]
        assert (corrupt.operator, corrupt.amplitude) == ("count", 0.3)
        failure = by_type["RescaleFailure"]
        assert (failure.mode, failure.count) == ("timeout", 2)

    def test_defaults(self):
        schedule = parse_faults(
            "crash@10:op,dropout@0+5:src,rescale-fail@1"
        )
        by_type = {type(e).__name__: e for e in schedule.events}
        assert by_type["InstanceCrash"].index == 0
        assert by_type["MetricDropout"].fraction == 1.0
        assert by_type["RescaleFailure"].mode == "abort"
        assert by_type["RescaleFailure"].count == 1

    @pytest.mark.parametrize("spec", [
        "",
        "   ",
        "crash",
        "crash@",
        "crash@10",                # missing operator
        "dropout@10:src",          # missing duration
        "dropout@10+abc:src",      # duration not a number
        "lag@5",                   # missing duration
        "corrupt@5+5",             # missing operator
        "rescale-fail@x",          # time not a number
        "rescale-fail@0:explode",  # unknown mode
        "meteor@0",                # unknown kind
        "crash@-5:op",             # negative time
    ])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(FaultInjectionError):
            parse_faults(spec)


class TestParseCorruptHealth:
    def test_parse_with_amplitude(self):
        schedule = parse_faults("corrupt-health@10+60:worker*0.4")
        [event] = schedule.events
        assert isinstance(event, HealthCorruption)
        assert (event.time, event.duration) == (10.0, 60.0)
        assert event.operator == "worker"
        assert event.amplitude == 0.4

    def test_default_amplitude(self):
        [event] = parse_faults("corrupt-health@0+5:worker").events
        assert event.amplitude == 0.5

    def test_composes_with_other_kinds(self):
        schedule = parse_faults(
            "crash@600:flatmap,corrupt-health@50+25:count*0.3"
        )
        kinds = {type(e).__name__ for e in schedule.events}
        assert kinds == {"InstanceCrash", "HealthCorruption"}

    @pytest.mark.parametrize("spec", [
        "corrupt-health@5",           # missing duration
        "corrupt-health@5+5",         # missing operator
        "corrupt-health@5+5:op*1.5",  # amplitude out of range
        "corrupt-health@5+5:op*abc",  # amplitude not a number
    ])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(FaultInjectionError):
            parse_faults(spec)
