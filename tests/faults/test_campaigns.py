"""Unit tests of the chaos-campaign subsystem."""

import dataclasses

import pytest

from repro.errors import FaultInjectionError
from repro.faults import (
    FAULT_KINDS,
    PROFILES,
    CampaignGenerator,
    CampaignProfile,
    CampaignTargets,
    HealthCorruption,
    InstanceCrash,
    MetricCorruption,
    MetricDropout,
    MetricLag,
    RescaleFailure,
    SasoScorecard,
    aggregate_scorecards,
)

TARGETS = CampaignTargets(sources=("src",), operators=("fm", "ct"))

EVENT_KINDS = {
    InstanceCrash: "crash",
    MetricDropout: "dropout",
    MetricLag: "lag",
    MetricCorruption: "corrupt",
    HealthCorruption: "corrupt-health",
    RescaleFailure: "rescale-fail",
}


class TestCampaignProfile:
    def test_builtin_profiles_are_valid_and_named_consistently(self):
        assert set(PROFILES) >= {"mixed", "crashes", "telemetry", "smoke"}
        for name, profile in PROFILES.items():
            assert profile.name == name

    def test_rejects_unknown_kind(self):
        with pytest.raises(FaultInjectionError, match="unknown fault"):
            CampaignProfile(name="bad", mix={"meteor": 1.0})

    def test_rejects_all_zero_mix(self):
        with pytest.raises(FaultInjectionError, match="positive"):
            CampaignProfile(name="bad", mix={"crash": 0.0})

    def test_rejects_negative_weight(self):
        with pytest.raises(FaultInjectionError, match=">= 0"):
            CampaignProfile(name="bad", mix={"crash": -1.0})

    def test_rejects_quiet_head_beyond_duration(self):
        with pytest.raises(FaultInjectionError, match="quiet_head"):
            CampaignProfile(
                name="bad", mix={"crash": 1.0},
                duration=100.0, quiet_head=100.0,
            )

    def test_rejects_inverted_parameter_range(self):
        with pytest.raises(FaultInjectionError, match="dropout_fraction"):
            CampaignProfile(
                name="bad", mix={"dropout": 1.0},
                dropout_fraction=(0.9, 0.1),
            )

    def test_rejects_sub_unit_burstiness(self):
        with pytest.raises(FaultInjectionError, match="burstiness"):
            CampaignProfile(
                name="bad", mix={"crash": 1.0}, burstiness=0.5
            )

    def test_kinds_follow_positive_weights(self):
        profile = CampaignProfile(
            name="p", mix={"crash": 1.0, "lag": 0.0, "dropout": 2.0}
        )
        assert profile.kinds == ("crash", "dropout")


class TestCampaignTargets:
    def test_rejects_empty_pools(self):
        with pytest.raises(FaultInjectionError):
            CampaignTargets(sources=(), operators=())

    def test_from_graph_uses_sources_and_scalable_operators(self):
        from repro.workloads.wordcount import (
            COUNT,
            FLATMAP,
            SOURCE,
            heron_wordcount_graph,
        )

        targets = CampaignTargets.from_graph(heron_wordcount_graph())
        assert SOURCE in targets.sources
        assert set(targets.operators) == {FLATMAP, COUNT}


class TestCampaignGenerator:
    def test_same_inputs_same_schedule(self):
        first = CampaignGenerator(PROFILES["mixed"], TARGETS, seed=5)
        second = CampaignGenerator(PROFILES["mixed"], TARGETS, seed=5)
        for campaign in range(4):
            assert first.schedule(campaign) == second.schedule(campaign)

    def test_different_seed_or_campaign_differs(self):
        generator = CampaignGenerator(PROFILES["mixed"], TARGETS, seed=5)
        other = CampaignGenerator(PROFILES["mixed"], TARGETS, seed=6)
        assert generator.schedule(0) != generator.schedule(1)
        assert generator.schedule(0) != other.schedule(0)

    def test_different_profiles_differ(self):
        mixed = CampaignGenerator(PROFILES["mixed"], TARGETS, seed=5)
        telemetry = CampaignGenerator(
            PROFILES["telemetry"], TARGETS, seed=5
        )
        assert mixed.schedule(0) != telemetry.schedule(0)

    def test_events_respect_window_mix_and_pools(self):
        profile = PROFILES["mixed"]
        generator = CampaignGenerator(profile, TARGETS, seed=3)
        for campaign in range(5):
            schedule = generator.schedule(campaign)
            assert len(schedule) > 0
            for event in schedule.events:
                assert (
                    profile.quiet_head
                    <= event.time
                    <= profile.duration
                )
                assert EVENT_KINDS[type(event)] in profile.kinds
                if isinstance(
                    event,
                    (InstanceCrash, MetricCorruption, HealthCorruption),
                ):
                    assert event.operator in TARGETS.operators
                elif isinstance(event, MetricDropout):
                    assert event.operator in (
                        TARGETS.sources + TARGETS.operators
                    )

    def test_single_kind_profile_samples_only_that_kind(self):
        generator = CampaignGenerator(
            PROFILES["crashes"], TARGETS, seed=2
        )
        events = generator.schedule(0).events
        assert events
        assert all(isinstance(e, InstanceCrash) for e in events)

    def test_schedules_is_the_index_range(self):
        generator = CampaignGenerator(PROFILES["smoke"], TARGETS, seed=1)
        assert generator.schedules(3) == [
            generator.schedule(0),
            generator.schedule(1),
            generator.schedule(2),
        ]

    def test_crash_profile_needs_operator_pool(self):
        sources_only = CampaignTargets(sources=("src",), operators=())
        with pytest.raises(FaultInjectionError, match="no operators"):
            CampaignGenerator(PROFILES["crashes"], sources_only)

    def test_bursty_profile_clusters_events(self):
        """With burstiness, event times concentrate around few centers:
        the typical (median) neighbour gap shrinks well below uniform.
        (The *mean* gap would not move — gaps always sum to the span.)"""
        calm = CampaignProfile(
            name="calm", mix={"lag": 1.0}, events_per_1000s=20.0
        )
        stormy = dataclasses.replace(
            calm, name="stormy", burstiness=4.0
        )

        def median_gap(profile):
            generator = CampaignGenerator(profile, TARGETS, seed=11)
            gaps = []
            for campaign in range(10):
                times = sorted(
                    e.time for e in generator.schedule(campaign).events
                )
                gaps.extend(
                    b - a for a, b in zip(times, times[1:])
                )
            return sorted(gaps)[len(gaps) // 2]

        assert median_gap(stormy) < 0.5 * median_gap(calm)


def _card(controller, campaign, **overrides):
    values = dict(
        controller=controller,
        campaign=campaign,
        schedule_seed=7,
        oscillations=2,
        steady_state_error=0.1,
        settling_epochs=4,
        overshoot_ratio=1.5,
        downtime_fraction=0.2,
        recovery_seconds=30.0,
        scaling_actions=3,
        failed_rescales=1,
    )
    values.update(overrides)
    return SasoScorecard(**values)


class TestScorecard:
    def test_score_combines_the_saso_components(self):
        card = _card("ds2", 0)
        assert card.score == pytest.approx(
            1.0 * 2 + 10.0 * 0.1 + 0.1 * 4 + 5.0 * 0.5 + 5.0 * 0.2
        )

    def test_no_overshoot_is_not_rewarded_below_one(self):
        """An undershooting trajectory (ratio < 1) must not subtract
        from the score."""
        flat = _card("ds2", 0, overshoot_ratio=1.0)
        under = _card("ds2", 0, overshoot_ratio=0.5)
        assert under.score == flat.score

    def test_perfect_run_scores_zero(self):
        card = _card(
            "ds2", 0,
            oscillations=0, steady_state_error=0.0,
            settling_epochs=0, overshoot_ratio=1.0,
            downtime_fraction=0.0, recovery_seconds=0.0,
            scaling_actions=0, failed_rescales=0,
        )
        assert card.score == 0.0


class TestAggregation:
    def test_groups_by_controller_and_averages(self):
        cards = [
            _card("ds2", 0, oscillations=0),
            _card("ds2", 1, oscillations=4),
            _card("dhalion", 0, failed_rescales=2),
        ]
        aggregates = aggregate_scorecards(cards)
        assert set(aggregates) == {"ds2", "dhalion"}
        ds2 = aggregates["ds2"]
        assert ds2.campaigns == 2
        assert ds2.mean_oscillations == pytest.approx(2.0)
        assert ds2.mean_score == pytest.approx(
            (cards[0].score + cards[1].score) / 2
        )
        assert aggregates["dhalion"].total_failed_rescales == 2

    def test_empty_input_is_empty(self):
        assert aggregate_scorecards([]) == {}


class TestKindsVocabulary:
    def test_fault_kinds_match_the_grammar(self):
        assert set(FAULT_KINDS) == set(EVENT_KINDS.values())
