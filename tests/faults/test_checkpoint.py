"""Checkpoint journal suite: durability, corruption, kill-and-resume.

The crash-safety contract has two halves, both tested here:

* The journal itself — every completed cell is durably recorded and
  round-trips losslessly; a torn final record (crash mid-append) is
  recovered with a warning; mid-file corruption, schema-version
  mismatches, header mismatches, and spec-hash mismatches are rejected
  with `CheckpointError` rather than half-trusted.
* The resume equivalence gate — a `repro run chaos --checkpoint` run
  hard-killed (SIGKILL) mid-campaign and resumed with `--resume` must
  print stdout byte-identical to an uninterrupted run, serially and on
  a process pool. `scripts/check.sh` runs the `kill_and_resume` tests
  as a dedicated stage.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.errors import CheckpointError, FaultInjectionError
from repro.experiments.chaos import resolve_workload
from repro.faults.campaigns import (
    PROFILES,
    CampaignGenerator,
    CampaignTargets,
    ParallelExecutor,
    SerialExecutor,
)
from repro.faults.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointJournal,
    JournalHeader,
    cell_fingerprint,
    scorecard_from_payload,
    scorecard_to_payload,
)
from repro.telemetry.registry import MetricsRegistry, metering
from repro.workloads.wordcount import heron_wordcount_graph

POOL_TIMEOUT = 180.0

HEADER = JournalHeader(
    profile="smoke",
    workload="wordcount",
    seed=1,
    campaigns=2,
    controllers=("dhalion", "ds2", "ds2-legacy"),
)


def _generator(seed=1, profile="smoke"):
    return CampaignGenerator(
        PROFILES[profile],
        CampaignTargets.from_graph(heron_wordcount_graph()),
        seed=seed,
    )


def _runner(tick=2.0):
    return resolve_workload("wordcount").runner(tick)


def _specs(campaigns=2, seed=1, tick=2.0):
    return _runner(tick).cell_specs(_generator(seed), campaigns)


def _cards_as_dicts(cards):
    return [dataclasses.asdict(card) for card in cards]


class TestScorecardRoundTrip:
    def test_real_cells_round_trip_exactly(self):
        from repro.faults.campaigns import run_campaign_cell

        for spec in _specs(campaigns=1):
            card = run_campaign_cell(spec)
            payload = json.loads(json.dumps(scorecard_to_payload(card)))
            assert scorecard_from_payload(payload) == card

    def test_audit_free_card_round_trips(self):
        from repro.faults.campaigns import SasoScorecard

        card = SasoScorecard(
            controller="x", campaign=0, schedule_seed=1,
            oscillations=0, steady_state_error=0.1,
            settling_epochs=2, overshoot_ratio=1.0,
            downtime_fraction=0.0, recovery_seconds=0.0,
            scaling_actions=1, failed_rescales=0, audit=None,
        )
        assert scorecard_from_payload(
            scorecard_to_payload(card)
        ) == card

    def test_malformed_payload_raises(self):
        with pytest.raises(CheckpointError, match="malformed"):
            scorecard_from_payload({"controller": "x"})


class TestCellFingerprint:
    def test_stable_for_identical_specs(self):
        assert [cell_fingerprint(s) for s in _specs()] == [
            cell_fingerprint(s) for s in _specs()
        ]

    def test_differs_across_cells_and_configs(self):
        specs = _specs()
        prints = {cell_fingerprint(s) for s in specs}
        assert len(prints) == len(specs)
        # A different engine tick is a different campaign config.
        other = _specs(tick=1.0)
        assert cell_fingerprint(specs[0]) != cell_fingerprint(other[0])


class TestJournalLifecycle:
    def test_fresh_open_writes_header_eagerly(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal.open(path, HEADER)
        journal.close()
        lines = Path(path).read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["record"] == "header"

    def test_record_and_resume_round_trip(self, tmp_path):
        from repro.faults.campaigns import run_campaign_cell

        path = str(tmp_path / "j.jsonl")
        specs = _specs(campaigns=1)
        cards = [run_campaign_cell(s) for s in specs]
        with CheckpointJournal.open(path, HEADER) as journal:
            for spec, card in zip(specs, cards):
                journal.record_cell(spec, card, {"metrics": []})
        resumed = CheckpointJournal.open(path, HEADER, resume=True)
        matched = resumed.match(specs)
        assert sorted(matched) == [0, 1, 2]
        assert _cards_as_dicts(
            [matched[i].scorecard for i in range(3)]
        ) == _cards_as_dicts(cards)
        assert resumed.warnings == []
        resumed.close()

    def test_fresh_open_refuses_existing_journal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        CheckpointJournal.open(path, HEADER).close()
        with pytest.raises(CheckpointError, match="already exists"):
            CheckpointJournal.open(path, HEADER)

    def test_resume_requires_existing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot resume"):
            CheckpointJournal.open(
                str(tmp_path / "missing.jsonl"), HEADER, resume=True
            )


def _journal_with_cells(tmp_path, campaigns=1):
    from repro.faults.campaigns import run_campaign_cell

    path = str(tmp_path / "j.jsonl")
    specs = _specs(campaigns=campaigns)
    with CheckpointJournal.open(path, HEADER) as journal:
        for spec in specs:
            journal.record_cell(
                spec, run_campaign_cell(spec), {"metrics": []}
            )
    return path, specs


class TestJournalCorruption:
    def test_torn_final_record_recovered_with_warning(self, tmp_path):
        path, specs = _journal_with_cells(tmp_path)
        intact = Path(path).read_text()
        # A crash mid-append leaves a half-written record with no
        # trailing newline.
        Path(path).write_text(intact + '{"record": "cell", "key"')
        journal = CheckpointJournal.open(path, HEADER, resume=True)
        assert len(journal.warnings) == 1
        assert "torn" in journal.warnings[0]
        assert len(journal.match(specs)) == len(specs)
        # Recovery truncated the file back to its valid prefix, so
        # appending cannot concatenate onto the torn garbage.
        assert Path(path).read_text() == intact
        journal.close()

    def test_midfile_corruption_rejected(self, tmp_path):
        path, _ = _journal_with_cells(tmp_path)
        lines = Path(path).read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]
        Path(path).write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt at line 2"):
            CheckpointJournal.open(path, HEADER, resume=True)

    def test_unknown_record_kind_rejected(self, tmp_path):
        path, _ = _journal_with_cells(tmp_path)
        with open(path, "a") as handle:
            handle.write(json.dumps({"record": "mystery"}) + "\n")
            handle.write(json.dumps({"record": "quarantine"}) + "\n")
        with pytest.raises(CheckpointError, match="mystery"):
            CheckpointJournal.open(path, HEADER, resume=True)

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path, _ = _journal_with_cells(tmp_path)
        lines = Path(path).read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = CHECKPOINT_VERSION + 1
        lines[0] = json.dumps(header, sort_keys=True)
        Path(path).write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="schema version"):
            CheckpointJournal.open(path, HEADER, resume=True)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("profile", "mixed"),
            ("workload", "nexmark-q5"),
            ("seed", 99),
            ("campaigns", 7),
            ("controllers", ("ds2",)),
        ],
    )
    def test_header_mismatch_rejected(self, tmp_path, field, value):
        path, _ = _journal_with_cells(tmp_path)
        mismatched = dataclasses.replace(HEADER, **{field: value})
        with pytest.raises(CheckpointError, match=field):
            CheckpointJournal.open(path, mismatched, resume=True)

    def test_spec_hash_mismatch_rejected(self, tmp_path):
        """Cells journaled under tick=2.0 must not resume a tick=1.0
        run: same keys, different simulation."""
        path, _ = _journal_with_cells(tmp_path)
        journal = CheckpointJournal.open(path, HEADER, resume=True)
        with pytest.raises(
            CheckpointError, match="different campaign configuration"
        ):
            journal.match(_specs(campaigns=1, tick=1.0))
        journal.close()

    def test_foreign_cell_rejected(self, tmp_path):
        """A journal holding cells outside this batch is not ours."""
        path, specs = _journal_with_cells(tmp_path, campaigns=2)
        journal = CheckpointJournal.open(path, HEADER, resume=True)
        with pytest.raises(CheckpointError, match="not part of"):
            journal.match(specs[:3])  # campaign 1's cells are foreign
        journal.close()

    def test_missing_header_rejected(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        Path(path).write_text(
            json.dumps({"record": "cell"}) + "\n"
            + json.dumps({"record": "cell"}) + "\n"
        )
        with pytest.raises(CheckpointError, match="header"):
            CheckpointJournal.open(path, HEADER, resume=True)


class TestExecutorJournaling:
    """Both stock executors honour an attached journal.

    Scorecards are deterministic across executions, so they are
    compared against a plain serial run. Telemetry includes wall-clock
    histograms (engine step timing), so cross-execution byte equality
    is only demanded where it must hold: a *full* resume replays the
    journaled per-cell snapshots, whose canonical fold must reproduce
    the original run's registry exactly.
    """

    def _plain_cards(self, specs):
        return SerialExecutor().run_cells(specs)

    def _journaled_run(self, path, specs, make_backend, resume=False):
        journal = CheckpointJournal.open(path, HEADER, resume=resume)
        registry = MetricsRegistry()
        try:
            with metering(registry):
                cards = make_backend(journal).run_cells(specs)
        finally:
            journal.close()
        return cards, registry.render_text()

    @pytest.mark.parametrize("backend", ["serial", "parallel"])
    def test_journaled_run_and_full_resume_equivalence(
        self, tmp_path, backend
    ):
        make_backend = (
            (lambda j: SerialExecutor(checkpoint=j))
            if backend == "serial"
            else (lambda j: ParallelExecutor(
                2, timeout=POOL_TIMEOUT, checkpoint=j
            ))
        )
        specs = _specs()
        plain_cards = self._plain_cards(specs)
        path = str(tmp_path / "j.jsonl")
        cards, metrics = self._journaled_run(
            path, specs, make_backend
        )
        assert _cards_as_dicts(cards) == _cards_as_dicts(plain_cards)
        # Full resume: every cell comes from the journal; the merged
        # registry must be byte-identical to the original run's.
        resumed_cards, resumed_metrics = self._journaled_run(
            path, specs, make_backend, resume=True
        )
        assert _cards_as_dicts(resumed_cards) == _cards_as_dicts(cards)
        assert resumed_metrics == metrics

    @pytest.mark.parametrize("resumed_executor", ["serial", "parallel"])
    def test_partial_journal_resumes_missing_cells_only(
        self, tmp_path, resumed_executor
    ):
        """Truncate a journal mid-batch (a simulated kill), resume on
        either backend: identical scorecards, journal completed."""
        specs = _specs()
        plain_cards = self._plain_cards(specs)
        path = str(tmp_path / "j.jsonl")
        with CheckpointJournal.open(path, HEADER) as journal:
            SerialExecutor(checkpoint=journal).run_cells(specs)
        lines = Path(path).read_text().splitlines()
        Path(path).write_text(
            "\n".join(lines[:4]) + "\n"  # header + 3 of 6 cells
        )
        journal = CheckpointJournal.open(path, HEADER, resume=True)
        assert len(journal.completed) == 3
        backend = (
            SerialExecutor(checkpoint=journal)
            if resumed_executor == "serial"
            else ParallelExecutor(
                2, timeout=POOL_TIMEOUT, checkpoint=journal
            )
        )
        cards = backend.run_cells(specs)
        journal.close()
        assert _cards_as_dicts(cards) == _cards_as_dicts(plain_cards)
        # The resumed run journaled the missing cells too.
        journal = CheckpointJournal.open(path, HEADER, resume=True)
        assert len(journal.completed) == len(specs)
        journal.close()


# ----------------------------------------------------------------------
# The check.sh gate: hard-kill a CLI run, resume it, demand identity
# ----------------------------------------------------------------------

CLI_ARGS = [
    "run", "chaos", "--profile", "smoke", "--seeds", "3",
    "--scale", "0.5",
]


def _cli_env():
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _run_cli(extra, timeout=POOL_TIMEOUT):
    return subprocess.run(
        [sys.executable, "-m", "repro"] + CLI_ARGS + extra,
        capture_output=True,
        text=True,
        env=_cli_env(),
        timeout=timeout,
    )


def _cell_count(path):
    if not os.path.exists(path):
        return 0
    count = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if '"record": "cell"' in line:
                count += 1
    return count


def _kill_mid_campaign(checkpoint, jobs_args):
    """Start a checkpointed run, SIGKILL it once >= 2 cells landed."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro"]
        + CLI_ARGS
        + jobs_args
        + ["--checkpoint", checkpoint],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=_cli_env(),
    )
    deadline = time.monotonic() + POOL_TIMEOUT  # repro: allow[REPRO101] — test timeout guard
    while time.monotonic() < deadline:  # repro: allow[REPRO101]
        if _cell_count(checkpoint) >= 2:
            break
        if process.poll() is not None:
            break  # finished before we could kill it; still resumable
        time.sleep(0.01)
    if process.poll() is None:
        process.kill()
        process.wait(timeout=60)


@pytest.mark.parametrize("jobs_args", [[], ["--jobs", "2"]],
                         ids=["serial", "jobs2"])
def test_kill_and_resume_byte_identical(tmp_path, jobs_args):
    """A SIGKILLed chaos run resumed from its journal prints stdout
    byte-identical to an uninterrupted run (the acceptance gate)."""
    reference = _run_cli(
        jobs_args + ["--checkpoint", str(tmp_path / "ref.jsonl")]
    )
    assert reference.returncode == 0, reference.stderr
    killed = str(tmp_path / "killed.jsonl")
    _kill_mid_campaign(killed, jobs_args)
    assert os.path.exists(killed)
    resumed = _run_cli(
        jobs_args + ["--checkpoint", killed, "--resume"]
    )
    assert resumed.returncode == 0, resumed.stderr
    assert resumed.stdout == reference.stdout
    assert "Coverage: 9/9 cells completed" in resumed.stdout


def test_kill_and_resume_trace_identical(tmp_path):
    """The recorded trace of a resumed run matches an uninterrupted
    one: cells are re-announced in canonical order from the journal."""
    ref_trace = str(tmp_path / "ref-trace.jsonl")
    reference = _run_cli([
        "--checkpoint", str(tmp_path / "ref.jsonl"),
        "--trace", ref_trace,
    ])
    assert reference.returncode == 0, reference.stderr
    killed = str(tmp_path / "killed.jsonl")
    _kill_mid_campaign(killed, [])
    resumed_trace = str(tmp_path / "resumed-trace.jsonl")
    resumed = _run_cli([
        "--checkpoint", killed, "--resume", "--trace", resumed_trace,
    ])
    assert resumed.returncode == 0, resumed.stderr
    assert (
        Path(resumed_trace).read_bytes()
        == Path(ref_trace).read_bytes()
    )
