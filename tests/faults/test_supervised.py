"""Supervision suite: retry, quarantine, timeouts, interrupt/resume.

The journal's durability contract lives in test_checkpoint.py; this
file covers the supervising layer wrapped around it:

* bounded retry with capped exponential backoff (injected fake sleep
  asserts the exact wait sequence),
* quarantine of cells that exhaust the budget — the batch completes
  with coverage annotated instead of aborting, on both the in-process
  and the process-pool paths,
* per-cell SIGALRM wall-clock deadlines,
* SIGTERM mid-campaign -> `CampaignInterrupted` naming the journal,
  then a resume that completes the batch with identical scorecards,
* `run_supervised_campaign` emitting the same trace and scorecards as
  the plain `CampaignRunner.run` path,
* the chaos report's coverage annotation.
"""

import dataclasses
import os
import signal
import time

import pytest

from repro.errors import FaultInjectionError
from repro.experiments.chaos import chaos_report, run_chaos
from repro.faults.campaigns import (
    SerialExecutor,
    run_campaign_cell,
)
from repro.faults.checkpoint import (
    CampaignInterrupted,
    CellRetryPolicy,
    CheckpointJournal,
    SupervisedExecutor,
    run_supervised_campaign,
)
from repro.telemetry.tracer import Tracer, tracing
from tests.faults.test_checkpoint import (
    HEADER,
    _generator,
    _runner,
    _specs,
)

POOL_TIMEOUT = 180.0


# ----------------------------------------------------------------------
# Runners (module-level where the process pool needs to pickle them)
# ----------------------------------------------------------------------

def _fail_dhalion(spec):
    """Poison exactly the dhalion cells; everything else is real."""
    if spec.controller == "dhalion":
        raise ValueError("injected poison")
    return run_campaign_cell(spec)


def _sleep_forever(spec):
    time.sleep(30.0)
    return run_campaign_cell(spec)


class _Flaky:
    """Fail the first ``failures`` attempts of selected cells.

    In-process only (carries mutable state), which is exactly where the
    backoff sequence is observable through an injected sleep.
    """

    def __init__(self, failures_by_key):
        self.failures = dict(failures_by_key)
        self.attempts = {}

    def __call__(self, spec):
        count = self.attempts.get(spec.key, 0) + 1
        self.attempts[spec.key] = count
        if count <= self.failures.get(spec.key, 0):
            raise RuntimeError(f"flaky attempt {count}")
        return run_campaign_cell(spec)


class _TerminateAt:
    """Deliver SIGTERM to ourselves when a specific cell comes up."""

    def __init__(self, key):
        self.key = key

    def __call__(self, spec):
        if spec.key == self.key:
            os.kill(os.getpid(), signal.SIGTERM)
        return run_campaign_cell(spec)


class TestRetryPolicy:
    def test_backoff_sequence_is_capped_exponential(self):
        policy = CellRetryPolicy()
        waits = [policy.backoff_seconds(n) for n in range(1, 7)]
        assert waits == [0.25, 0.5, 1.0, 2.0, 4.0, 4.0]

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"max_attempts": 0}, "max_attempts"),
            ({"backoff_base": 0.5}, "backoff_base"),
            ({"initial_backoff_seconds": 0.0}, "initial_backoff"),
            (
                {
                    "initial_backoff_seconds": 2.0,
                    "max_backoff_seconds": 1.0,
                },
                "max_backoff",
            ),
        ],
    )
    def test_invalid_policy_rejected(self, kwargs, match):
        with pytest.raises(FaultInjectionError, match=match):
            CellRetryPolicy(**kwargs)

    def test_attempt_must_be_positive(self):
        with pytest.raises(FaultInjectionError, match="attempt"):
            CellRetryPolicy().backoff_seconds(0)

    def test_executor_rejects_bad_limits(self):
        with pytest.raises(FaultInjectionError, match="jobs"):
            SupervisedExecutor(jobs=0)
        with pytest.raises(FaultInjectionError, match="cell_timeout"):
            SupervisedExecutor(cell_timeout=0.0)


class TestRetryAndQuarantine:
    def test_flaky_cell_retried_with_exact_backoff(self):
        specs = _specs(campaigns=1)
        flaky = _Flaky({specs[0].key: 2})
        sleeps = []
        supervisor = SupervisedExecutor(
            runner=flaky, sleep=sleeps.append
        )
        outcome = supervisor.execute(specs)
        assert outcome.coverage.complete
        assert sleeps == [0.25, 0.5]
        assert flaky.attempts[specs[0].key] == 3
        # Retries re-run the same deterministic cell, so the batch
        # still matches an unsupervised run exactly.
        assert outcome.scorecards == SerialExecutor().run_cells(specs)

    def test_poison_cell_quarantined_serially(self):
        specs = _specs(campaigns=1)
        sleeps = []
        supervisor = SupervisedExecutor(
            runner=_fail_dhalion,
            retry=CellRetryPolicy(max_attempts=2),
            sleep=sleeps.append,
        )
        outcome = supervisor.execute(specs)
        cov = outcome.coverage
        assert (cov.cells, cov.completed, cov.quarantined) == (3, 2, 1)
        assert not cov.complete
        (cell,) = cov.quarantined_cells
        assert cell.key == next(
            s.key for s in specs if s.controller == "dhalion"
        )
        assert cell.attempts == 2
        assert "ValueError: injected poison" in cell.error
        assert "injected poison" in cell.traceback
        # One backoff between the two rounds, none after the last.
        assert sleeps == [0.25]
        good = [s for s in specs if s.controller != "dhalion"]
        assert outcome.scorecards == SerialExecutor().run_cells(good)

    def test_run_cells_contract_turns_quarantine_into_error(self):
        specs = _specs(campaigns=1)
        supervisor = SupervisedExecutor(
            runner=_fail_dhalion,
            retry=CellRetryPolicy(max_attempts=1),
            sleep=lambda _: None,
        )
        with pytest.raises(
            FaultInjectionError, match="retry budget.*dhalion"
        ):
            supervisor.run_cells(specs)

    def test_poison_cell_quarantined_on_pool(self):
        specs = _specs(campaigns=1)
        supervisor = SupervisedExecutor(
            jobs=2,
            runner=_fail_dhalion,
            retry=CellRetryPolicy(max_attempts=2),
            sleep=lambda _: None,
            pool_timeout=POOL_TIMEOUT,
        )
        outcome = supervisor.execute(specs)
        cov = outcome.coverage
        assert (cov.cells, cov.completed, cov.quarantined) == (3, 2, 1)
        (cell,) = cov.quarantined_cells
        assert cell.attempts == 2
        assert "ValueError: injected poison" in cell.error
        good = [s for s in specs if s.controller != "dhalion"]
        assert outcome.scorecards == SerialExecutor().run_cells(good)


class TestCellTimeout:
    def test_over_budget_cell_is_a_failed_attempt(self):
        specs = _specs(campaigns=1)[:1]
        supervisor = SupervisedExecutor(
            runner=_sleep_forever,
            retry=CellRetryPolicy(max_attempts=1),
            cell_timeout=0.2,
            sleep=lambda _: None,
        )
        start = time.monotonic()  # repro: allow[REPRO101] — test timeout guard
        outcome = supervisor.execute(specs)
        assert time.monotonic() - start < 10.0  # repro: allow[REPRO101]
        (cell,) = outcome.coverage.quarantined_cells
        assert cell.error == "cell exceeded its 0.2s timeout"


class TestInterruptAndResume:
    def test_sigterm_drains_then_resume_completes(self, tmp_path):
        path = str(tmp_path / "chaos.ckpt")
        specs = _specs(campaigns=2)
        assert len(specs) == 6
        with CheckpointJournal.open(path, HEADER) as journal:
            supervisor = SupervisedExecutor(
                runner=_TerminateAt(specs[3].key), journal=journal
            )
            with pytest.raises(CampaignInterrupted) as caught:
                supervisor.execute(specs)
        interrupted = caught.value
        assert interrupted.completed == 3
        assert interrupted.cells == 6
        assert interrupted.path == path
        assert path in str(interrupted)

        with CheckpointJournal.open(
            path, HEADER, resume=True
        ) as journal:
            outcome = SupervisedExecutor(journal=journal).execute(
                specs
            )
        assert outcome.resumed == 3
        assert outcome.coverage.complete
        assert outcome.scorecards == SerialExecutor().run_cells(specs)

    def test_interrupt_without_journal_says_cells_are_lost(self):
        specs = _specs(campaigns=1)
        supervisor = SupervisedExecutor(
            runner=_TerminateAt(specs[1].key)
        )
        with pytest.raises(CampaignInterrupted) as caught:
            supervisor.execute(specs)
        assert caught.value.path is None
        assert "no checkpoint" in str(caught.value)


class TestSupervisedCampaignDriver:
    def test_matches_plain_campaign_runner_trace(self):
        runner = _runner()
        plain_tracer = Tracer()
        with tracing(plain_tracer):
            plain = runner.run(_generator(), 2)
        supervised_tracer = Tracer()
        with tracing(supervised_tracer):
            outcome = run_supervised_campaign(
                runner, _generator(), 2, SupervisedExecutor()
            )
        assert outcome.scorecards == plain
        assert outcome.coverage.complete
        assert (
            supervised_tracer.to_jsonl() == plain_tracer.to_jsonl()
        )

    def test_quarantine_traced_instead_of_aborting(self):
        tracer = Tracer()
        with tracing(tracer):
            outcome = run_supervised_campaign(
                _runner(),
                _generator(),
                1,
                SupervisedExecutor(
                    runner=_fail_dhalion,
                    retry=CellRetryPolicy(max_attempts=1),
                    sleep=lambda _: None,
                ),
            )
        assert outcome.coverage.quarantined == 1
        (event,) = tracer.events("campaign.quarantine")
        assert event.data["controller"] == "dhalion"
        assert "injected poison" in event.data["error"]
        assert len(tracer.events("campaign.cell")) == 2
        assert len(tracer.events("campaign.end")) == 1


class TestChaosReportCoverage:
    def test_report_annotates_coverage_and_quarantine(self, tmp_path):
        result = run_chaos(
            profile="smoke",
            campaigns=1,
            tick=2.0,
            include_recovery=False,
            checkpoint=str(tmp_path / "chaos.ckpt"),
        )
        report = chaos_report(result)
        assert "Coverage: 3/3 cells completed, 0 quarantined" in report

        quarantined = dataclasses.replace(
            result,
            coverage=dataclasses.replace(
                result.coverage,
                completed=2,
                quarantined=1,
                quarantined_cells=(
                    dataclasses.replace(
                        result.coverage.quarantined_cells[0]
                        if result.coverage.quarantined_cells
                        else _quarantined_stub(),
                        attempts=3,
                    ),
                ),
            ),
        )
        report = chaos_report(quarantined)
        assert "Coverage: 2/3 cells completed, 1 quarantined" in report
        assert (
            "quarantined (seed=1, campaign=0, controller='dhalion') "
            "after 3 attempt(s): ValueError: injected poison"
        ) in report


def _quarantined_stub():
    from repro.faults.checkpoint import QuarantinedCell

    return QuarantinedCell(
        key=(1, 0, "dhalion"),
        attempts=3,
        error="ValueError: injected poison",
    )
