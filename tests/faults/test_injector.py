"""The FaultInjector shim against a live simulator.

Every test drives a real :class:`Simulator` through the injector the
same way the control loop would — the shim's contract is that an
uninjected schedule leaves behaviour byte-identical and each fault type
perturbs exactly its own channel.
"""

import pytest

from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    map_operator,
    sink,
    source,
)
from repro.dataflow.physical import InstanceId, PhysicalPlan
from repro.dataflow.state import SavepointModel
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.errors import ReconfigurationError
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    HealthCorruption,
    InstanceCrash,
    MetricCorruption,
    MetricDropout,
    MetricLag,
    RescaleFailure,
)


def small_graph(rate=1000.0):
    return LogicalGraph(
        [
            source("src", rate=RateSchedule.constant(rate)),
            map_operator("op", costs=CostModel(processing_cost=1e-4)),
            sink("snk"),
        ],
        [Edge("src", "op"), Edge("op", "snk")],
    )


def make_injector(
    schedule,
    source_parallelism=2,
    op_parallelism=2,
    savepoint=None,
):
    graph = small_graph()
    plan = PhysicalPlan(
        graph, {"src": source_parallelism, "op": op_parallelism}
    )
    simulator = Simulator(
        plan,
        FlinkRuntime(savepoint=savepoint or SavepointModel.instant()),
        EngineConfig(tick=0.5, track_record_latency=False),
    )
    return FaultInjector(simulator, schedule)


def run_for(injector, seconds):
    end = injector.time + seconds
    while injector.time < end - 1e-9:
        injector.step()


class TestProxying:
    def test_delegates_untouched_surface(self):
        injector = make_injector(FaultSchedule([]))
        assert injector.time == 0.0
        assert injector.plan.parallelism["op"] == 2
        assert injector.graph.sources() == ("src",)
        assert injector.in_outage is False

    def test_empty_schedule_is_transparent(self):
        plain = make_injector(FaultSchedule([])).simulator
        shimmed = make_injector(FaultSchedule([]))
        for _ in range(20):
            plain.step()
            shimmed.step()
        assert (
            plain.collect_metrics() == shimmed.collect_metrics()
        )


class TestMetricDropout:
    def test_suppressed_instances_omitted_and_completeness_reported(self):
        schedule = FaultSchedule([
            MetricDropout(
                time=0.0, duration=100.0, operator="src", fraction=0.5
            ),
        ])
        injector = make_injector(schedule)
        run_for(injector, 10.0)
        window = injector.collect_metrics()
        assert window.completeness_of("src") == 0.5
        assert window.completeness_of("op") == 1.0
        assert len(window.instances_of("src")) == 1
        # Registered parallelism still knows the true deployment.
        assert window.registered_parallelism_of("src") == 2

    def test_source_telemetry_depressed(self):
        schedule = FaultSchedule([
            MetricDropout(
                time=0.0, duration=100.0, operator="src", fraction=0.5
            ),
        ])
        injector = make_injector(schedule)
        injector.step()  # sync suppression
        # Monitored target rate halves with half the reporters silent.
        assert injector.source_target_rates()["src"] == pytest.approx(
            500.0
        )
        run_for(injector, 10.0)
        window = injector.collect_metrics()
        clean = make_injector(FaultSchedule([]))
        run_for(clean, 10.5)
        reference = clean.collect_metrics()
        assert window.source_observed_rates["src"] == pytest.approx(
            reference.source_observed_rates["src"] * 0.5, rel=0.05
        )

    def test_counters_held_and_delivered_after_dropout(self):
        # Ends at t=15, mid second window, so the t=10 collection is
        # still suppressed and the t=20 one sees the catch-up report.
        schedule = FaultSchedule([
            MetricDropout(
                time=0.0, duration=15.0, operator="src", fraction=0.5
            ),
        ])
        injector = make_injector(schedule)
        run_for(injector, 10.0)
        during = injector.collect_metrics()
        assert InstanceId("src", 0) not in during.instances
        run_for(injector, 10.0)
        after = injector.collect_metrics()
        catchup = after.instances[InstanceId("src", 0)]
        # The silenced reporter catches up: its counters span both
        # windows, not just the last one.
        assert catchup.observed_time == pytest.approx(20.0)
        assert after.completeness_of("src") == 1.0

    def test_full_dropout_suppresses_every_instance(self):
        schedule = FaultSchedule([
            MetricDropout(time=0.0, duration=100.0, operator="op"),
        ])
        injector = make_injector(schedule)
        run_for(injector, 10.0)
        window = injector.collect_metrics()
        assert window.instances_of("op") == []
        assert window.completeness_of("op") == 0.0


class TestMetricCorruption:
    def _window(self, seed):
        schedule = FaultSchedule([
            MetricCorruption(
                time=0.0, duration=100.0, operator="op", amplitude=0.4
            ),
        ], seed=seed)
        injector = make_injector(schedule)
        run_for(injector, 10.0)
        return injector.collect_metrics()

    def test_scales_record_counts_not_timings(self):
        corrupted = self._window(seed=1)
        clean_injector = make_injector(FaultSchedule([]))
        run_for(clean_injector, 10.0)
        clean = clean_injector.collect_metrics()
        for iid in clean.instances_of("op"):
            a = corrupted.instances[iid]
            b = clean.instances[iid]
            assert a.records_pulled != b.records_pulled
            assert a.useful_time == b.useful_time
            assert a.observed_time == b.observed_time

    def test_deterministic_per_seed(self):
        assert self._window(seed=3) == self._window(seed=3)
        assert self._window(seed=3) != self._window(seed=4)


class TestMetricLag:
    def test_redelivers_stale_window_then_merges(self):
        schedule = FaultSchedule([
            MetricLag(time=10.0, duration=25.0),  # active 10..35
        ])
        injector = make_injector(schedule)
        run_for(injector, 10.0)
        # Lag starts exactly at this collection; with nothing delivered
        # yet to repeat, the newest window leaks through.
        fresh = injector.collect_metrics()
        assert fresh.end == pytest.approx(10.0)
        run_for(injector, 10.0)
        stale = injector.collect_metrics()  # t=20, lag active
        assert stale == fresh  # re-delivered, old timestamps and all
        run_for(injector, 10.0)
        assert injector.collect_metrics() == fresh  # t=30, still lagging
        run_for(injector, 10.0)
        merged = injector.collect_metrics()  # t=40, lag over
        # The backlog arrives as one catch-up window spanning the lag.
        assert merged.start == pytest.approx(10.0)
        assert merged.end == pytest.approx(40.0)


class TestInstanceCrash:
    def test_crash_costs_recovery_outage_and_truncates_window(self):
        schedule = FaultSchedule([
            InstanceCrash(time=5.0, operator="op", index=0),
        ])
        injector = make_injector(
            schedule,
            savepoint=SavepointModel(
                base_seconds=4.0,
                snapshot_bandwidth=1e12,
                redeploy_seconds=0.0,
            ),
        )
        run_for(injector, 10.0)
        assert injector.crash_count == 1
        window = injector.collect_metrics()
        assert window.truncated
        assert window.outage_fraction > 0.0
        # The plan itself is untouched by a crash.
        assert injector.plan.parallelism["op"] == 2

    def test_crash_index_clamped_to_parallelism(self):
        schedule = FaultSchedule([
            InstanceCrash(time=1.0, operator="op", index=99),
        ])
        injector = make_injector(schedule)
        run_for(injector, 5.0)
        assert injector.crash_count == 1

    def test_crash_of_unknown_operator_skipped(self):
        schedule = FaultSchedule([
            InstanceCrash(time=1.0, operator="ghost"),
        ])
        injector = make_injector(schedule)
        run_for(injector, 5.0)
        assert injector.crash_count == 0
        assert any(
            "unknown operator" in msg
            for _, msg in injector.injection_log
        )


class TestRescaleFailure:
    def test_abort_rejects_without_outage(self):
        schedule = FaultSchedule([
            RescaleFailure(time=0.0, mode="abort", count=1),
        ])
        injector = make_injector(schedule)
        run_for(injector, 2.0)
        with pytest.raises(ReconfigurationError):
            injector.rescale({"op": 4})
        assert injector.plan.parallelism["op"] == 2
        assert not injector.in_outage
        # The failure is consumed: the next attempt goes through.
        assert injector.rescale({"op": 4}) == 0.0
        assert injector.plan.parallelism["op"] == 4

    def test_timeout_charges_outage_and_keeps_old_plan(self):
        schedule = FaultSchedule([
            RescaleFailure(time=0.0, mode="timeout", count=1),
        ])
        injector = make_injector(
            schedule,
            savepoint=SavepointModel(
                base_seconds=5.0,
                snapshot_bandwidth=1e12,
                redeploy_seconds=0.0,
            ),
        )
        run_for(injector, 2.0)
        with pytest.raises(ReconfigurationError):
            injector.rescale({"op": 4})
        assert injector.in_outage
        run_for(injector, 6.0)
        # After the wasted outage the old configuration is running.
        assert not injector.in_outage
        assert injector.plan.parallelism["op"] == 2

    def test_count_limits_consecutive_failures(self):
        schedule = FaultSchedule([
            RescaleFailure(time=0.0, mode="abort", count=2),
        ])
        injector = make_injector(schedule)
        run_for(injector, 2.0)
        assert injector.armed_rescale_failures == 2
        for _ in range(2):
            with pytest.raises(ReconfigurationError):
                injector.rescale({"op": 4})
        assert injector.armed_rescale_failures == 0
        assert injector.rescale({"op": 4}) == 0.0


class TestHealthCorruption:
    """Corrupts the coarse health channel baselines consume, not the
    record counters DS2 reads."""

    def _injector(self, schedule, rate=9000.0):
        graph = small_graph(rate)
        plan = PhysicalPlan(graph, {"src": 2, "op": 1})
        simulator = Simulator(
            plan,
            FlinkRuntime(savepoint=SavepointModel.instant()),
            EngineConfig(tick=0.5, track_record_latency=False),
        )
        return FaultInjector(simulator, schedule)

    def _window(self, seed, rate=9000.0):
        schedule = FaultSchedule([
            HealthCorruption(
                time=0.0, duration=100.0, operator="op", amplitude=0.9
            ),
        ], seed=seed)
        injector = self._injector(schedule, rate)
        run_for(injector, 10.0)
        return injector.collect_metrics()

    def test_perturbs_health_not_counters(self):
        clean_injector = self._injector(FaultSchedule([]))
        run_for(clean_injector, 10.0)
        clean = clean_injector.collect_metrics()
        corrupted = self._window(seed=1)
        assert (
            corrupted.health["op"].queue_fill
            != clean.health["op"].queue_fill
        )
        assert (
            corrupted.health["op"].pending_records
            != clean.health["op"].pending_records
        )
        # DS2's channel is untouched: record counters and timings of
        # every instance are byte-identical.
        assert corrupted.instances == clean.instances
        # Other operators' health is untouched too.
        assert corrupted.health["src"] == clean.health["src"]
        assert corrupted.health["snk"] == clean.health["snk"]

    def test_backpressure_flag_recomputed(self):
        # Overload the operator so its queue is genuinely full; the
        # corruption (seed 2 draws a strong downward factor) pulls the
        # reported fill below the Flink threshold, masking the real
        # backpressure — the flag follows the corrupted fill.
        clean_injector = self._injector(FaultSchedule([]), rate=12000.0)
        run_for(clean_injector, 10.0)
        clean = clean_injector.collect_metrics()
        assert clean.health["op"].backpressure is True
        corrupted = self._window(seed=2, rate=12000.0)
        entry = corrupted.health["op"]
        assert entry.queue_fill < 0.8
        assert entry.backpressure is False

    def test_deterministic_per_seed(self):
        assert self._window(seed=3) == self._window(seed=3)
        assert self._window(seed=3) != self._window(seed=4)

    def test_trace_events_and_log_note(self):
        from repro.telemetry import Tracer, tracing

        schedule = FaultSchedule([
            HealthCorruption(
                time=0.0, duration=100.0, operator="op", amplitude=0.9
            ),
        ], seed=1)
        tracer = Tracer(capacity=None)
        with tracing(tracer):
            injector = self._injector(schedule)
            run_for(injector, 10.0)
            injector.collect_metrics()
        events = tracer.events("fault.HealthCorruption")
        assert events
        data = events[0].data
        assert data["operator"] == "op"
        assert {"queue_fill", "backpressure", "was_backpressure"} \
            <= set(data)
        assert any(
            "corrupted health signals" in note
            for _, note in injector.injection_log
        )
