"""Serial ↔ parallel equivalence suite for the campaign executor.

The `ParallelExecutor` contract: running the same cell specs on a
process pool produces scorecards *byte-identical* (asserted through a
`SasoScorecard` dict round-trip and `repr`) to the in-process
`SerialExecutor`, in the same canonical (campaign-major,
controller-minor) order, regardless of completion order. The suite also
covers the failure paths — a controller factory that raises inside a
child must surface the failing `(seed, campaign, controller)` cell with
the child's traceback and must not hang the pool — plus jobs/env
validation and the rate-less-source regression.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.runtimes import HeronRuntime
from repro.errors import FaultInjectionError
from repro.experiments.chaos import chaos_controllers, resolve_workload
from repro.experiments.comparison import HERON_POLICY_INTERVAL
from repro.faults.campaigns import (
    JOBS_ENV_VAR,
    PROFILES,
    CampaignGenerator,
    CampaignProfile,
    CampaignRunner,
    CampaignTargets,
    ParallelExecutor,
    SerialExecutor,
    make_executor,
    resolve_jobs,
    run_campaign_cell,
)
from repro.workloads.wordcount import (
    COUNT,
    FLATMAP,
    SINK,
    SOURCE,
    heron_wordcount_graph,
)

#: Generous per-cell ceiling: smoke cells finish in well under a second,
#: so hitting this means the pool deadlocked, which is exactly what the
#: timeout guard is for.
POOL_TIMEOUT = 180.0


def _cards_as_dicts(cards):
    return [dataclasses.asdict(card) for card in cards]


def _wordcount_generator(profile, seed=1):
    return CampaignGenerator(
        profile,
        CampaignTargets.from_graph(heron_wordcount_graph()),
        seed=seed,
    )


def _runner(workload="wordcount", tick=2.0):
    return resolve_workload(workload).runner(tick)


def _assert_equivalent(serial, parallel):
    assert _cards_as_dicts(serial) == _cards_as_dicts(parallel)
    assert repr(serial) == repr(parallel)


class TestSerialParallelEquivalence:
    def test_smoke_profile_golden(self):
        """Fixed-seed golden cells: jobs=2 matches serial exactly."""
        runner = _runner()
        generator = _wordcount_generator(PROFILES["smoke"])
        serial = runner.run(generator, 2, executor=SerialExecutor())
        parallel = runner.run(
            generator,
            2,
            executor=ParallelExecutor(2, timeout=POOL_TIMEOUT),
        )
        _assert_equivalent(serial, parallel)
        # Canonical order is campaign-major, controller-minor.
        assert [(c.campaign, c.controller) for c in serial] == [
            (campaign, controller)
            for campaign in (0, 1)
            for controller in ("ds2", "ds2-legacy", "dhalion")
        ]

    def test_smoke_profile_jobs_three(self):
        """More workers than campaigns still merges canonically."""
        runner = _runner()
        generator = _wordcount_generator(PROFILES["smoke"], seed=7)
        serial = runner.run(generator, 2, executor=SerialExecutor())
        parallel = runner.run(
            generator,
            2,
            executor=ParallelExecutor(3, timeout=POOL_TIMEOUT),
        )
        _assert_equivalent(serial, parallel)

    @pytest.mark.slow
    def test_mixed_profile(self):
        runner = _runner(tick=2.0)
        generator = _wordcount_generator(PROFILES["mixed"])
        serial = runner.run(generator, 2, executor=SerialExecutor())
        parallel = runner.run(
            generator,
            2,
            executor=ParallelExecutor(4, timeout=POOL_TIMEOUT),
        )
        _assert_equivalent(serial, parallel)

    def test_nexmark_windowed_cell(self):
        """A windowed Nexmark graph runs identically on the pool."""
        runner = _runner("nexmark-q5")
        generator = CampaignGenerator(
            PROFILES["smoke"],
            CampaignTargets.from_graph(
                resolve_workload("nexmark-q5").graph_factory()
            ),
            seed=3,
        )
        serial = runner.run(generator, 1, executor=SerialExecutor())
        parallel = runner.run(
            generator,
            1,
            executor=ParallelExecutor(2, timeout=POOL_TIMEOUT),
        )
        _assert_equivalent(serial, parallel)

    @pytest.mark.slow
    def test_nexmark_timely_global_scaling_cell(self):
        runner = _runner("nexmark-q5-timely")
        generator = CampaignGenerator(
            PROFILES["smoke"],
            CampaignTargets.from_graph(
                resolve_workload("nexmark-q5-timely").graph_factory()
            ),
            seed=3,
        )
        serial = runner.run(generator, 1, executor=SerialExecutor())
        parallel = runner.run(
            generator,
            1,
            executor=ParallelExecutor(2, timeout=POOL_TIMEOUT),
        )
        _assert_equivalent(serial, parallel)

    @pytest.mark.slow
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        events=st.floats(min_value=5.0, max_value=30.0),
        burstiness=st.floats(min_value=1.0, max_value=3.0),
    )
    def test_property_any_profile_matches(
        self, seed, events, burstiness
    ):
        """Hypothesis: equivalence holds across sampled profiles."""
        profile = CampaignProfile(
            name="prop",
            mix={"crash": 1.0, "dropout": 1.0, "lag": 1.0},
            duration=160.0,
            quiet_head=20.0,
            events_per_1000s=events,
            burstiness=burstiness,
            dropout_seconds=(10.0, 40.0),
            lag_seconds=(10.0, 30.0),
        )
        controllers = chaos_controllers()
        runner = CampaignRunner(
            graph=heron_wordcount_graph(),
            runtime=HeronRuntime(),
            initial_parallelism={
                SOURCE: 2, FLATMAP: 1, COUNT: 1, SINK: 1,
            },
            controllers={"ds2": controllers["ds2"]},
            policy_interval=HERON_POLICY_INTERVAL,
        )
        generator = _wordcount_generator(profile, seed=seed)
        serial = runner.run(generator, 1, executor=SerialExecutor())
        parallel = runner.run(
            generator,
            1,
            executor=ParallelExecutor(2, timeout=POOL_TIMEOUT),
        )
        _assert_equivalent(serial, parallel)

    def test_run_campaign_cell_matches_runner(self):
        """The extracted cell body is exactly one cell of run()."""
        runner = _runner()
        generator = _wordcount_generator(PROFILES["smoke"])
        specs = runner.cell_specs(generator, 1)
        direct = [run_campaign_cell(spec) for spec in specs]
        batch = runner.run(generator, 1, executor=SerialExecutor())
        _assert_equivalent(direct, batch)

    def test_empty_batch(self):
        runner = _runner()
        generator = _wordcount_generator(PROFILES["smoke"])
        assert runner.run(
            generator, 0, executor=ParallelExecutor(2)
        ) == []


def _exploding_controller():
    raise RuntimeError("kaboom-controller")


class TestWorkerFailure:
    def _boom_runner(self):
        return CampaignRunner(
            graph=heron_wordcount_graph(),
            runtime=HeronRuntime(),
            initial_parallelism={
                SOURCE: 2, FLATMAP: 1, COUNT: 1, SINK: 1,
            },
            controllers={"boom": _exploding_controller},
            policy_interval=HERON_POLICY_INTERVAL,
        )

    def test_child_exception_names_cell_and_traceback(self):
        runner = self._boom_runner()
        generator = _wordcount_generator(PROFILES["smoke"], seed=9)
        with pytest.raises(FaultInjectionError) as excinfo:
            runner.run(
                generator,
                2,
                executor=ParallelExecutor(2, timeout=POOL_TIMEOUT),
            )
        message = str(excinfo.value)
        # The failing (seed, campaign, controller) cell is named...
        assert "seed=9" in message
        assert "campaign=" in message
        assert "controller='boom'" in message
        # ...with the child's own traceback attached.
        assert "RuntimeError: kaboom-controller" in message
        assert "worker traceback" in message
        assert "_exploding_controller" in message

    def test_serial_executor_raises_plainly(self):
        runner = self._boom_runner()
        generator = _wordcount_generator(PROFILES["smoke"], seed=9)
        with pytest.raises(RuntimeError, match="kaboom-controller"):
            runner.run(generator, 1, executor=SerialExecutor())

    def test_unpicklable_factory_names_cell(self):
        runner = CampaignRunner(
            graph=heron_wordcount_graph(),
            runtime=HeronRuntime(),
            initial_parallelism={
                SOURCE: 2, FLATMAP: 1, COUNT: 1, SINK: 1,
            },
            controllers={"lam": lambda: None},
            policy_interval=HERON_POLICY_INTERVAL,
        )
        generator = _wordcount_generator(PROFILES["smoke"])
        with pytest.raises(
            FaultInjectionError, match="controller='lam'"
        ):
            runner.run(
                generator,
                1,
                executor=ParallelExecutor(2, timeout=POOL_TIMEOUT),
            )


class TestJobsResolution:
    def test_parallel_executor_rejects_nonpositive_jobs(self):
        for jobs in (0, -1):
            with pytest.raises(FaultInjectionError, match="jobs"):
                ParallelExecutor(jobs)

    def test_resolve_jobs_explicit(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        with pytest.raises(FaultInjectionError, match="jobs"):
            resolve_jobs(0)
        with pytest.raises(FaultInjectionError, match="jobs"):
            resolve_jobs(-2)

    def test_resolve_jobs_env(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs() == 1
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs() == 3
        monkeypatch.setenv(JOBS_ENV_VAR, "")
        assert resolve_jobs() == 1
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(FaultInjectionError, match=JOBS_ENV_VAR):
            resolve_jobs()
        monkeypatch.setenv(JOBS_ENV_VAR, "0")
        with pytest.raises(FaultInjectionError, match="jobs"):
            resolve_jobs()

    def test_explicit_jobs_beat_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "8")
        assert resolve_jobs(2) == 2

    def test_make_executor_picks_backend(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert isinstance(make_executor(), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        executor = make_executor(4)
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 4
        monkeypatch.setenv(JOBS_ENV_VAR, "2")
        from_env = make_executor()
        assert isinstance(from_env, ParallelExecutor)
        assert from_env.jobs == 2


class TestRateLessSourceRegression:
    def test_targets_for_raises_fault_injection_error(self):
        """A rate-less source must raise (not assert) with the
        operator named — asserts vanish under `python -O`."""
        graph = heron_wordcount_graph()
        runner = CampaignRunner(
            graph=graph,
            runtime=HeronRuntime(),
            initial_parallelism={
                SOURCE: 2, FLATMAP: 1, COUNT: 1, SINK: 1,
            },
            controllers=chaos_controllers(),
            policy_interval=HERON_POLICY_INTERVAL,
        )
        # Sources cannot normally be built without a rate (the spec
        # validates it), so strip it after construction to model a
        # hand-assembled or future graph variant.
        object.__setattr__(graph.operator(SOURCE), "rate", None)
        with pytest.raises(FaultInjectionError) as excinfo:
            runner._targets_for(240.0)
        message = str(excinfo.value)
        assert SOURCE in message
        assert "target_rates" in message
        assert not isinstance(excinfo.value, AssertionError)

    def test_explicit_target_rates_bypass_source_rates(self):
        graph = heron_wordcount_graph()
        runner = CampaignRunner(
            graph=graph,
            runtime=HeronRuntime(),
            initial_parallelism={
                SOURCE: 2, FLATMAP: 1, COUNT: 1, SINK: 1,
            },
            controllers=chaos_controllers(),
            policy_interval=HERON_POLICY_INTERVAL,
            target_rates={SOURCE: 1000.0},
        )
        object.__setattr__(graph.operator(SOURCE), "rate", None)
        assert runner._targets_for(240.0) == {SOURCE: 1000.0}
