"""Validation of the declarative fault event types."""

import pytest

from repro.errors import FaultInjectionError, ReproError
from repro.faults import (
    HealthCorruption,
    InstanceCrash,
    MetricCorruption,
    MetricDropout,
    MetricLag,
    RescaleFailure,
)


class TestCommonValidation:
    @pytest.mark.parametrize("time", [-1.0, float("nan"), float("inf")])
    def test_bad_time_rejected(self, time):
        with pytest.raises(FaultInjectionError):
            InstanceCrash(time=time, operator="op")

    def test_fault_error_is_repro_error(self):
        with pytest.raises(ReproError):
            raise FaultInjectionError("x")

    def test_events_are_immutable(self):
        event = InstanceCrash(time=1.0, operator="op")
        with pytest.raises(Exception):
            event.time = 2.0


class TestInstanceCrash:
    def test_valid(self):
        event = InstanceCrash(time=10.0, operator="flatmap", index=3)
        assert event.operator == "flatmap"
        assert event.index == 3

    def test_needs_operator(self):
        with pytest.raises(FaultInjectionError):
            InstanceCrash(time=10.0)

    def test_negative_index_rejected(self):
        with pytest.raises(FaultInjectionError):
            InstanceCrash(time=10.0, operator="op", index=-1)


class TestMetricDropout:
    def test_valid_interval(self):
        event = MetricDropout(
            time=5.0, duration=10.0, operator="src", fraction=0.5
        )
        assert event.end == 15.0
        assert event.active_at(5.0)
        assert event.active_at(14.9)
        assert not event.active_at(15.0)
        assert not event.active_at(4.9)

    @pytest.mark.parametrize("duration", [0.0, -1.0, float("inf")])
    def test_bad_duration_rejected(self, duration):
        with pytest.raises(FaultInjectionError):
            MetricDropout(time=0.0, duration=duration, operator="src")

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5])
    def test_bad_fraction_rejected(self, fraction):
        with pytest.raises(FaultInjectionError):
            MetricDropout(
                time=0.0, duration=1.0, operator="src",
                fraction=fraction,
            )

    def test_needs_operator(self):
        with pytest.raises(FaultInjectionError):
            MetricDropout(time=0.0, duration=1.0)


class TestMetricLag:
    def test_valid(self):
        event = MetricLag(time=0.0, duration=30.0)
        assert event.end == 30.0

    def test_zero_duration_rejected(self):
        with pytest.raises(FaultInjectionError):
            MetricLag(time=0.0, duration=0.0)


class TestMetricCorruption:
    def test_valid(self):
        event = MetricCorruption(
            time=0.0, duration=5.0, operator="count", amplitude=0.3
        )
        assert event.amplitude == 0.3

    @pytest.mark.parametrize("amplitude", [0.0, 1.0, -0.1, 2.0])
    def test_bad_amplitude_rejected(self, amplitude):
        with pytest.raises(FaultInjectionError):
            MetricCorruption(
                time=0.0, duration=5.0, operator="count",
                amplitude=amplitude,
            )

    def test_needs_operator(self):
        with pytest.raises(FaultInjectionError):
            MetricCorruption(time=0.0, duration=5.0)


class TestRescaleFailure:
    def test_valid_modes(self):
        assert RescaleFailure(time=0.0).mode == "abort"
        assert RescaleFailure(time=0.0, mode="timeout").count == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(FaultInjectionError):
            RescaleFailure(time=0.0, mode="explode")

    def test_bad_count_rejected(self):
        with pytest.raises(FaultInjectionError):
            RescaleFailure(time=0.0, count=0)


class TestHealthCorruption:
    def test_valid(self):
        event = HealthCorruption(
            time=0.0, duration=5.0, operator="count", amplitude=0.4
        )
        assert event.amplitude == 0.4

    def test_default_amplitude(self):
        event = HealthCorruption(
            time=0.0, duration=5.0, operator="count"
        )
        assert event.amplitude == 0.5

    @pytest.mark.parametrize("amplitude", [0.0, 1.0, -0.1, 2.0])
    def test_bad_amplitude_rejected(self, amplitude):
        with pytest.raises(FaultInjectionError):
            HealthCorruption(
                time=0.0, duration=5.0, operator="count",
                amplitude=amplitude,
            )

    def test_needs_operator(self):
        with pytest.raises(FaultInjectionError):
            HealthCorruption(time=0.0, duration=5.0)
