"""Ablation: DS2 vs the baseline controllers on identical jobs.

Not a paper figure, but the design-choice comparison DESIGN.md calls
out: the same Flink wordcount under (a) DS2, (b) the CPU-threshold
policy, and (c) the Dhalion-style policy. DS2 wins on every SASO axis:
fewest steps, fastest convergence, exact provisioning.
"""

from benchmarks._util import emit, run_once
from repro.core.baselines import (
    DhalionController,
    ThresholdController,
)
from repro.core.manager import DS2Controller, ManagerConfig
from repro.core.policy import DS2Policy
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig
from repro.experiments.harness import run_controlled
from repro.experiments.report import format_rate, format_table
from repro.workloads.wordcount import COUNT, FLATMAP, wordcount_graph
from repro.dataflow.operators import CostModel, RateSchedule

RATE = 1_000_000.0
DURATION = 2400.0


def build_graph():
    return wordcount_graph(
        rate=RateSchedule.constant(RATE),
        flatmap_cost=CostModel(
            processing_cost=6.0e-6,
            deserialization_cost=5.0e-7,
            serialization_cost=5.0e-7,
            coordination_alpha=0.02,
        ),
        count_cost=CostModel(
            processing_cost=2.0e-7,
            deserialization_cost=2.0e-8,
            serialization_cost=2.0e-8,
            coordination_alpha=0.02,
        ),
    )


def run_with(controller_factory):
    graph = build_graph()
    run = run_controlled(
        graph=graph,
        runtime=FlinkRuntime(),
        initial_parallelism={name: 1 for name in graph.names},
        controller=controller_factory(graph),
        policy_interval=30.0,
        duration=DURATION,
        max_parallelism=64,
        engine_config=EngineConfig(tick=0.25, track_record_latency=False),
    )
    events = run.loop_result.events
    return {
        "steps": len(events),
        "converged": events[-1].time if events else 0.0,
        "flatmap": run.final_parallelism[FLATMAP],
        "count": run.final_parallelism[COUNT],
        "achieved": run.achieved_source_rate("source"),
    }


def test_ablation_controllers(benchmark):
    def experiment():
        return {
            "ds2": run_with(
                lambda g: DS2Controller(
                    DS2Policy(g),
                    ManagerConfig(
                        warmup_intervals=1, activation_intervals=1
                    ),
                )
            ),
            "threshold": run_with(lambda g: ThresholdController()),
            "dhalion": run_with(lambda g: DhalionController()),
        }

    outcomes = run_once(benchmark, experiment)
    rows = [
        (
            name,
            o["steps"],
            f"{o['converged']:.0f}",
            o["flatmap"],
            o["count"],
            format_rate(o["achieved"]),
        )
        for name, o in outcomes.items()
    ]
    emit(
        "ablation_controllers",
        format_table(
            ("controller", "scaling steps", "last action (s)",
             "flatmap", "count", "achieved rate"),
            rows,
            title=(
                "Ablation: controllers on the same 1M rec/s wordcount "
                "(start 1/1)"
            ),
        ),
    )

    ds2 = outcomes["ds2"]
    # DS2 reaches the target within three steps.
    assert ds2["steps"] <= 3
    assert ds2["achieved"] >= RATE * 0.98
    # Every baseline needs strictly more scaling actions.
    assert outcomes["threshold"]["steps"] > ds2["steps"]
    assert outcomes["dhalion"]["steps"] > ds2["steps"]
