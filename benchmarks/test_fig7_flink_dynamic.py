"""Figure 7 / section 5.3: DS2 driving Flink under a dynamic workload.

Two-phase wordcount (2M sentences/s, then 1M). DS2 (10 s interval,
30 s warm-up) scales the under-provisioned job up in at most three
actions, holds it stable, then scales it down in at most three actions
when the rate halves — each action through Flink's savepoint-and-
restart mechanism with a tens-of-seconds outage.
"""

from benchmarks._util import emit, run_once
from repro.experiments.dynamic import run_dynamic_scaling
from repro.experiments.report import format_rate, format_table
from repro.workloads.wordcount import COUNT, FLATMAP


def test_fig7_flink_dynamic(benchmark):
    result = run_once(
        benchmark,
        lambda: run_dynamic_scaling(phase_seconds=600.0, tick=0.25),
    )
    rows = [
        (
            f"{event.time:7.1f}",
            event.applied[FLATMAP],
            event.applied[COUNT],
            f"{event.outage_seconds:.0f}",
        )
        for event in result.run.loop_result.events
    ]
    timeline = format_table(
        ("time (s)", "flatmap", "count", "outage (s)"),
        rows,
        title=(
            "Figure 7: scaling actions (phase 1: 2M rec/s for 600 s; "
            "phase 2: 1M rec/s)"
        ),
    )
    # Steady-state achieved rates per phase.
    phase1_rate = result.run.source_rate["source"].window_mean(500, 600)
    phase2_rate = result.run.source_rate["source"].window_mean(
        1100, 1200
    )
    summary = format_table(
        ("phase", "steps", "final flatmap", "final count",
         "steady source rate"),
        [
            ("1 (2M rec/s)", result.phase1_steps,
             result.phase1_final[FLATMAP], result.phase1_final[COUNT],
             format_rate(phase1_rate)),
            ("2 (1M rec/s)", result.phase2_steps,
             result.final[FLATMAP], result.final[COUNT],
             format_rate(phase2_rate)),
        ],
    )
    emit("fig7_flink_dynamic", timeline + "\n\n" + summary)

    assert 1 <= result.phase1_steps <= 3
    assert 1 <= result.phase2_steps <= 3
    # Scale-up then scale-down.
    assert result.phase1_final[FLATMAP] > 10
    assert result.final[FLATMAP] < result.phase1_final[FLATMAP]
    # Both phases end at (or above) their target rate.
    assert phase1_rate >= 2_000_000 * 0.98
    assert phase2_rate >= 1_000_000 * 0.98
