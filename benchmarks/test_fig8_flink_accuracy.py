"""Figure 8 / section 5.5: accuracy on the Flink-style runtime.

For every Nexmark query, fixed configurations around the DS2-indicated
parallelism of the main operator: below it, backpressure depresses the
observed source rate and blows up per-record latency; at it, the full
rate is sustained with low latency; above it, latency barely improves —
the indicated configuration is the minimum that keeps up.
"""

from benchmarks._util import emit, run_once
from repro.experiments.accuracy import run_figure8
from repro.experiments.report import (
    format_rate,
    format_table,
    latency_summary,
)
from repro.workloads.nexmark import ALL_QUERIES


def test_fig8_flink_accuracy(benchmark):
    def experiment():
        return {
            query.name: run_figure8(
                query,
                offsets=(-4, -2, 0, +4),
                duration=240.0,
                tick=0.25,
                convergence_duration=1200.0,
            )
            for query in ALL_QUERIES
        }

    results = run_once(benchmark, experiment)

    rows = []
    for name, points in results.items():
        for p in points:
            rows.append((
                name,
                f"{p.main_parallelism}"
                + (" <- indicated" if p.is_indicated else ""),
                format_rate(p.achieved_rate),
                format_rate(p.target_rate),
                "yes" if p.backpressured else "no",
                latency_summary(p.latency),
            ))
    emit(
        "fig8_flink_accuracy",
        format_table(
            ("query", "parallelism", "achieved", "target",
             "backpressure", "per-record latency"),
            rows,
            title="Figure 8: source rates and latency vs parallelism",
        ),
    )

    for name, points in results.items():
        indicated = next(p for p in points if p.is_indicated)
        below = [
            p for p in points
            if p.main_parallelism < indicated.main_parallelism
        ]
        above = [
            p for p in points
            if p.main_parallelism > indicated.main_parallelism
        ]
        # The indicated configuration keeps up.
        assert indicated.sustains_target, name
        # Anything below it cannot (and gets much worse latency).
        for p in below:
            assert not p.sustains_target, (name, p.main_parallelism)
            assert p.latency.median() > indicated.latency.median()
        # More parallelism does not significantly improve latency.
        for p in above:
            assert p.sustains_target
            assert p.latency.median() <= (
                indicated.latency.median() * 1.5 + 0.05
            )
