"""Performance of the simulator itself.

Not a paper figure: these benchmarks measure how fast the substrate
simulates virtual time, which bounds how cheaply the experiment suite
can be re-run. Unlike the experiment benchmarks (deterministic one-shot
runs), these use proper multi-round timing.
"""

from repro.dataflow.physical import PhysicalPlan
from repro.engine.runtimes import FlinkRuntime, TimelyRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.workloads.nexmark import get_query
from repro.workloads.wordcount import flink_wordcount_graph


def test_engine_throughput_wordcount(benchmark):
    """Ticks/second on the 33-instance Flink wordcount deployment."""
    graph = flink_wordcount_graph()
    plan = PhysicalPlan(
        graph,
        {"source": 1, "flatmap": 22, "count": 13, "sink": 1},
        max_parallelism=36,
    )
    sim = Simulator(
        plan,
        FlinkRuntime(),
        EngineConfig(tick=0.1, track_record_latency=False),
    )
    sim.run_for(5.0)  # warm the queues

    benchmark(sim.run_for, 10.0)  # 100 ticks per round

    # Sanity: simulated faster than real time by a wide margin.
    stats = benchmark.stats.stats
    assert stats.mean < 10.0


def test_engine_throughput_windowed_query(benchmark):
    """Ticks/second on Q5 (sliding window) at its optimum."""
    query = get_query("Q5")
    graph = query.flink_graph()
    plan = PhysicalPlan(
        graph, query.initial_parallelism(graph, 16), max_parallelism=36
    )
    sim = Simulator(
        plan,
        FlinkRuntime(),
        EngineConfig(tick=0.25, track_record_latency=True),
    )
    sim.run_for(10.0)
    benchmark(sim.run_for, 10.0)


def test_engine_throughput_timely(benchmark):
    """Ticks/second under the shared-worker (water-filling) model."""
    query = get_query("Q3")
    graph = query.timely_graph()
    plan = PhysicalPlan(graph, {name: 4 for name in graph.names})
    sim = Simulator(
        plan,
        TimelyRuntime(),
        EngineConfig(
            tick=0.1, track_record_latency=False, epoch_seconds=1.0
        ),
    )
    sim.run_for(5.0)
    benchmark(sim.run_for, 5.0)


def test_policy_evaluation_speed(benchmark):
    """One full model evaluation (Eq. 7/8) on a live metrics window —
    the paper highlights that DS2 decisions take milliseconds."""
    from repro.core import compute_optimal_parallelism

    query = get_query("Q3")
    graph = query.flink_graph()
    plan = PhysicalPlan(
        graph, query.initial_parallelism(graph, 20), max_parallelism=36
    )
    sim = Simulator(
        plan,
        FlinkRuntime(),
        EngineConfig(tick=0.25, track_record_latency=False),
    )
    sim.run_for(30.0)
    window = sim.collect_metrics()
    rates = sim.source_target_rates()

    result = benchmark(
        compute_optimal_parallelism, graph, window, rates
    )
    assert result.estimates

    # Milliseconds, as the paper claims for the decision itself.
    assert benchmark.stats.stats.mean < 0.05
