"""Performance of the simulator itself.

Not a paper figure: these benchmarks measure how fast the substrate
simulates virtual time, which bounds how cheaply the experiment suite
can be re-run. Unlike the experiment benchmarks (deterministic one-shot
runs), these use proper multi-round timing.

``test_vector_backend_speedup_q5`` is the acceptance gate for the
struct-of-arrays engine backend: the ``vector`` backend must simulate
the wide Nexmark Q5 cell at >= 5x the ticks/second of the ``object``
backend (see ``docs/performance.md`` and the committed scaling table in
``benchmarks/output/engine_speedup.txt``).
"""

import time

from repro.dataflow.physical import PhysicalPlan
from repro.engine.runtimes import FlinkRuntime, TimelyRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.workloads.nexmark import get_query
from repro.workloads.wordcount import flink_wordcount_graph


def test_engine_throughput_wordcount(benchmark):
    """Ticks/second on the 33-instance Flink wordcount deployment."""
    graph = flink_wordcount_graph()
    plan = PhysicalPlan(
        graph,
        {"source": 1, "flatmap": 22, "count": 13, "sink": 1},
        max_parallelism=36,
    )
    sim = Simulator(
        plan,
        FlinkRuntime(),
        EngineConfig(tick=0.1, track_record_latency=False),
    )
    sim.run_for(5.0)  # warm the queues

    benchmark(sim.run_for, 10.0)  # 100 ticks per round

    # Sanity: simulated faster than real time by a wide margin.
    stats = benchmark.stats.stats
    assert stats.mean < 10.0


def test_engine_throughput_windowed_query(benchmark):
    """Ticks/second on Q5 (sliding window) at its optimum."""
    query = get_query("Q5")
    graph = query.flink_graph()
    plan = PhysicalPlan(
        graph, query.initial_parallelism(graph, 16), max_parallelism=36
    )
    sim = Simulator(
        plan,
        FlinkRuntime(),
        EngineConfig(tick=0.25, track_record_latency=True),
    )
    sim.run_for(10.0)
    benchmark(sim.run_for, 10.0)


def test_engine_throughput_timely(benchmark):
    """Ticks/second under the shared-worker (water-filling) model."""
    query = get_query("Q3")
    graph = query.timely_graph()
    plan = PhysicalPlan(graph, {name: 4 for name in graph.names})
    sim = Simulator(
        plan,
        TimelyRuntime(),
        EngineConfig(
            tick=0.1, track_record_latency=False, epoch_seconds=1.0
        ),
    )
    sim.run_for(5.0)
    benchmark(sim.run_for, 5.0)


def _q5_wide_simulator(backend: str) -> Simulator:
    """The speedup benchmark cell: Q5 with 256 slots (the windowed
    hot_items operator takes nearly all of them), record latency
    tracking on — the same cell profiled by scripts/profile_tick.py."""
    query = get_query("Q5")
    graph = query.flink_graph()
    parallelism = query.initial_parallelism(graph, 256)
    plan = PhysicalPlan(
        graph,
        parallelism,
        max_parallelism=max(parallelism.values()) + 8,
    )
    return Simulator(
        plan,
        FlinkRuntime(),
        EngineConfig(tick=0.25, track_record_latency=True),
        backend=backend,
    )


def _ticks_per_second(sim: Simulator, ticks: int) -> float:
    start = time.perf_counter()  # repro: allow[REPRO101] — benchmark measures wall clock
    for _ in range(ticks):
        sim.step()
    return ticks / (time.perf_counter() - start)  # repro: allow[REPRO101]


def test_vector_backend_speedup_q5():
    """The vector backend is >= 5x faster on the wide Q5 cell.

    Manual perf_counter timing rather than the benchmark fixture: the
    assertion is about the *ratio* between two backends measured on the
    same machine in the same process, which pytest-benchmark's
    per-function rounds cannot express. The committed scaling table
    (benchmarks/output/engine_speedup.txt) measures ~7-8x at this cell;
    5x leaves headroom for loaded CI machines.
    """
    object_sim = _q5_wide_simulator("object")
    vector_sim = _q5_wide_simulator("vector")
    # Warm both past the startup transient (queues filling up).
    object_sim.run_for(5.0)
    vector_sim.run_for(5.0)
    # Interleave two measurement rounds per backend so a load spike
    # hits both rather than biasing one.
    object_tps = []
    vector_tps = []
    for _ in range(2):
        object_tps.append(_ticks_per_second(object_sim, 150))
        vector_tps.append(_ticks_per_second(vector_sim, 150))
    speedup = max(vector_tps) / max(object_tps)
    assert speedup >= 5.0, (
        f"vector backend speedup {speedup:.2f}x below the 5x bar "
        f"(object {max(object_tps):.0f} t/s, "
        f"vector {max(vector_tps):.0f} t/s)"
    )


def test_policy_evaluation_speed(benchmark):
    """One full model evaluation (Eq. 7/8) on a live metrics window —
    the paper highlights that DS2 decisions take milliseconds."""
    from repro.core import compute_optimal_parallelism

    query = get_query("Q3")
    graph = query.flink_graph()
    plan = PhysicalPlan(
        graph, query.initial_parallelism(graph, 20), max_parallelism=36
    )
    sim = Simulator(
        plan,
        FlinkRuntime(),
        EngineConfig(tick=0.25, track_record_latency=False),
    )
    sim.run_for(30.0)
    window = sim.collect_metrics()
    rates = sim.source_target_rates()

    result = benchmark(
        compute_optimal_parallelism, graph, window, rates
    )
    assert result.estimates

    # Milliseconds, as the paper claims for the decision itself.
    assert benchmark.stats.stats.mean < 0.05
