"""Ablation: the manager's noise guards under measurement noise.

Section 4.2.2: "DS2 also ignores minor changes ... which can be
triggered by noisy metrics." With per-tick cost noise enabled in the
engine, a workload sitting exactly on a ceiling boundary flips its raw
parallelism requirement back and forth; this benchmark measures how
many (useless) scaling actions each guard configuration performs.
"""

from benchmarks._util import emit, run_once
from repro.core.controller import ControlLoop
from repro.core.manager import DS2Controller, ManagerConfig
from repro.core.policy import DS2Policy
from repro.dataflow.graph import Edge, LogicalGraph
from repro.dataflow.operators import (
    CostModel,
    RateSchedule,
    map_operator,
    sink,
    source,
)
from repro.dataflow.physical import PhysicalPlan
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.experiments.report import format_table

#: 55K rec/s over instrumented per-instance capacity ~9.26K/s: the
#: noise-free requirement is ~5.94 instances — on the ceil boundary.
RATE = 55_000.0
JITTER = 0.08


def boundary_graph():
    return LogicalGraph(
        [
            source("src", rate=RateSchedule.constant(RATE)),
            map_operator("op", costs=CostModel(processing_cost=1e-4)),
            sink("snk"),
        ],
        [Edge("src", "op"), Edge("op", "snk")],
    )


def run_guarded(suppress, activation, duration=900.0, seed=11):
    graph = boundary_graph()
    sim = Simulator(
        PhysicalPlan(graph, {"op": 6}),
        FlinkRuntime(),
        EngineConfig(
            tick=0.25, track_record_latency=False,
            cost_jitter=JITTER, seed=seed,
        ),
    )
    controller = DS2Controller(
        DS2Policy(graph),
        ManagerConfig(
            warmup_intervals=1,
            activation_intervals=activation,
            suppress_minor_change=suppress,
        ),
    )
    loop = ControlLoop(sim, controller, policy_interval=10.0)
    result = loop.run(duration)
    return result.scaling_steps, sim.plan.parallelism_of("op")


def test_ablation_noise_guards(benchmark):
    configurations = [
        ("no guards", 0, 1),
        ("activation=5 (median)", 0, 5),
        ("suppress minor (±1)", 1, 1),
        ("both", 1, 5),
    ]

    def experiment():
        return {
            label: run_guarded(suppress, activation)
            for label, suppress, activation in configurations
        }

    outcomes = run_once(benchmark, experiment)
    rows = [
        (label, steps, final)
        for label, (steps, final) in outcomes.items()
    ]
    emit(
        "ablation_noise",
        format_table(
            ("guards", "scaling actions in 15 min", "final parallelism"),
            rows,
            title=(
                "Ablation: noise guards on a ceil-boundary workload "
                f"(8% cost noise; §4.2.2)"
            ),
        ),
    )
    unguarded_steps = outcomes["no guards"][0]
    # Noise alone causes churn without guards...
    assert unguarded_steps >= 1
    # ...and each guard independently removes it.
    assert outcomes["suppress minor (±1)"][0] == 0
    assert outcomes["both"][0] == 0
    assert outcomes["activation=5 (median)"][0] <= unguarded_steps
