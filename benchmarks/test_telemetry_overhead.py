"""Overhead of the telemetry layer (ISSUE 4 acceptance criterion).

Two claims, both measured on the 33-instance Flink wordcount
deployment:

* stepping with an active tracer + metrics registry stays within 5%
  of stepping with telemetry disabled (the no-op path really is
  near-zero-cost, and the enabled path samples `engine.tick` instead
  of tracing every tick);
* the JSONL trace of a fixed seeded run is byte-identical across
  repeats (traces carry virtual time only — no wall clock leaks in).

Timings use best-of-repeats: the minimum over several interleaved
measurements is the least noisy estimator of the true cost on a
shared machine.
"""

import time

from benchmarks._util import emit
from repro.dataflow.physical import PhysicalPlan
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.telemetry import MetricsRegistry, Tracer, metering, tracing
from repro.workloads.wordcount import flink_wordcount_graph

REPEATS = 5
SIM_SECONDS = 30.0  # 300 ticks per measurement
TOLERANCE = 0.05


def build_simulator():
    graph = flink_wordcount_graph()
    plan = PhysicalPlan(
        graph,
        {"source": 1, "flatmap": 22, "count": 13, "sink": 1},
        max_parallelism=36,
    )
    return Simulator(
        plan,
        FlinkRuntime(),
        EngineConfig(tick=0.1, track_record_latency=False),
    )


def time_run(telemetry: bool) -> float:
    sim = build_simulator()
    sim.run_for(5.0)  # warm the queues
    if telemetry:
        with tracing(Tracer(capacity=None)), \
                metering(MetricsRegistry()):
            started = time.perf_counter()  # repro: allow[REPRO101] — benchmark measures wall clock
            sim.run_for(SIM_SECONDS)
            return time.perf_counter() - started  # repro: allow[REPRO101]
    started = time.perf_counter()  # repro: allow[REPRO101]
    sim.run_for(SIM_SECONDS)
    return time.perf_counter() - started  # repro: allow[REPRO101]


def test_telemetry_overhead_within_tolerance():
    # Interleave the repeats so slow machine phases hit both arms.
    disabled = []
    enabled = []
    for _ in range(REPEATS):
        disabled.append(time_run(telemetry=False))
        enabled.append(time_run(telemetry=True))
    best_disabled = min(disabled)
    best_enabled = min(enabled)
    overhead = best_enabled / best_disabled - 1.0
    emit(
        "telemetry_overhead",
        "\n".join(
            [
                "Telemetry overhead (33-instance Flink wordcount, "
                f"{SIM_SECONDS:.0f}s of virtual time, "
                f"best of {REPEATS})",
                f"  disabled: {best_disabled * 1000:.1f} ms",
                f"  enabled:  {best_enabled * 1000:.1f} ms",
                f"  overhead: {overhead:+.1%} "
                f"(tolerance {TOLERANCE:.0%})",
            ]
        ),
    )
    assert overhead <= TOLERANCE, (
        f"telemetry-enabled stepping is {overhead:+.1%} slower than "
        f"disabled (budget {TOLERANCE:.0%})"
    )


def test_traced_run_is_deterministic():
    def traced_jsonl() -> str:
        tracer = Tracer(capacity=None)
        with tracing(tracer):
            sim = build_simulator()
            sim.run_for(SIM_SECONDS)
            sim.collect_metrics()
        return tracer.to_jsonl()

    first = traced_jsonl()
    second = traced_jsonl()
    assert first, "traced run produced no events"
    assert first == second, (
        "two identical runs produced different traces — wall-clock "
        "state leaked into the trace"
    )
