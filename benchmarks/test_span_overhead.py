"""Overhead of the span profiler (ISSUE 9 acceptance criterion).

Two claims, both measured on the wide Nexmark Q5 cell under the
``vector`` engine backend (the fastest stepping path, hence the most
sensitive to per-tick instrumentation):

* stepping with an active ``SpanProfiler`` stays within 5% of stepping
  with spans disabled — the enter/exit bookkeeping on ``engine.tick``
  and friends is cheap relative to the tick itself;
* the disabled path costs nothing measurable. The ``if profiled:``
  guards are always compiled in (there is no uninstrumented build), so
  the disabled-spans claim is measured as two independently constructed
  null-profiler arms interleaved with each other: their best-of ratio
  bounds the guard path's cost at the measurement noise floor (<=1%).

Timings use best-of-repeats: the minimum over several interleaved
measurements is the least noisy estimator of the true cost on a
shared machine.
"""

import time

import pytest

from benchmarks._util import emit
from repro.dataflow.physical import PhysicalPlan
from repro.engine.npcompat import HAVE_NUMPY
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.telemetry.spans import SpanProfiler, profiling
from repro.workloads.nexmark import get_query

REPEATS = 5
TICKS = 150
ENABLED_TOLERANCE = 0.05
DISABLED_TOLERANCE = 0.01

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="vector backend requires numpy"
)


def build_simulator() -> Simulator:
    """The wide Q5 vector cell from the engine speedup benchmark."""
    query = get_query("Q5")
    graph = query.flink_graph()
    parallelism = query.initial_parallelism(graph, 256)
    plan = PhysicalPlan(
        graph,
        parallelism,
        max_parallelism=max(parallelism.values()) + 8,
    )
    return Simulator(
        plan,
        FlinkRuntime(),
        EngineConfig(tick=0.25, track_record_latency=True),
        backend="vector",
    )


def time_run(spans: bool) -> float:
    if spans:
        with profiling(SpanProfiler()):
            sim = build_simulator()
            sim.run_for(5.0)  # warm the queues
            started = time.perf_counter()  # repro: allow[REPRO101] — benchmark measures wall clock
            for _ in range(TICKS):
                sim.step()
            return time.perf_counter() - started  # repro: allow[REPRO101]
    sim = build_simulator()
    sim.run_for(5.0)
    started = time.perf_counter()  # repro: allow[REPRO101]
    for _ in range(TICKS):
        sim.step()
    return time.perf_counter() - started  # repro: allow[REPRO101]


def test_span_overhead_within_tolerance():
    # Interleave the three arms so slow machine phases hit all of
    # them: two independent disabled arms (the noise-floor bound for
    # the guard path) plus the enabled arm.
    baseline = []
    disabled = []
    enabled = []
    for _ in range(REPEATS):
        baseline.append(time_run(spans=False))
        disabled.append(time_run(spans=False))
        enabled.append(time_run(spans=True))
    best_baseline = min(baseline)
    best_disabled = min(disabled)
    best_enabled = min(enabled)
    disabled_overhead = best_disabled / best_baseline - 1.0
    enabled_overhead = best_enabled / best_baseline - 1.0
    emit(
        "span_overhead",
        "\n".join(
            [
                "Span profiler overhead (wide Nexmark Q5, vector "
                f"backend, {TICKS} ticks, best of {REPEATS})",
                f"  baseline: {best_baseline * 1000:.1f} ms",
                f"  disabled: {best_disabled * 1000:.1f} ms "
                f"({disabled_overhead:+.1%}, "
                f"tolerance {DISABLED_TOLERANCE:.0%})",
                f"  enabled:  {best_enabled * 1000:.1f} ms "
                f"({enabled_overhead:+.1%}, "
                f"tolerance {ENABLED_TOLERANCE:.0%})",
            ]
        ),
    )
    assert disabled_overhead <= DISABLED_TOLERANCE, (
        f"disabled-spans stepping is {disabled_overhead:+.1%} off the "
        f"baseline arm (budget {DISABLED_TOLERANCE:.0%}) — the "
        f"`if profiled:` guard path regressed or the machine is too "
        f"noisy to measure"
    )
    assert enabled_overhead <= ENABLED_TOLERANCE, (
        f"span-enabled stepping is {enabled_overhead:+.1%} slower "
        f"than disabled (budget {ENABLED_TOLERANCE:.0%})"
    )


def test_enabled_run_records_engine_spans():
    profiler = SpanProfiler()
    with profiling(profiler):
        sim = build_simulator()
        sim.run_for(5.0)
    structure = profiler.structure()
    names = {child["name"] for child in structure["children"]}
    assert "engine.tick" in names
    tick = next(
        child
        for child in structure["children"]
        if child["name"] == "engine.tick"
    )
    assert tick["count"] == 20  # 5.0s / 0.25s tick
