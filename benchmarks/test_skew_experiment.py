"""Section 4.2.3: DS2 in the presence of data skew.

The wordcount benchmark with 20%/50%/70% key skew on Count. DS2
converges in two steps to the configuration that would be optimal
without skew, does not meet the (unreachable) target, and its decision
limiter freezes further reconfiguration instead of over-provisioning.
"""

from benchmarks._util import emit, run_once
from repro.experiments.report import format_table
from repro.experiments.skew_experiment import run_skew_experiment


def test_skew_experiment(benchmark):
    results = run_once(
        benchmark, lambda: run_skew_experiment(duration=600.0, tick=0.25)
    )
    rows = [
        (
            f"{r.skew:.0%}",
            r.steps,
            f"({r.final_flatmap}, {r.final_count})",
            f"({r.noskew_flatmap}, {r.noskew_count})",
            f"{r.achieved_rate / r.target_rate:.0%}",
            "yes" if r.frozen else "no",
        )
        for r in results
    ]
    emit(
        "skew_experiment",
        format_table(
            ("skew", "steps", "final (flatmap, count)",
             "no-skew optimum", "achieved/target", "frozen"),
            rows,
            title="Section 4.2.3: DS2 under data skew",
        ),
    )

    for r in results:
        assert r.steps == 2, r.skew
        assert r.converged_to_noskew_optimum, r.skew
        assert not r.meets_target, r.skew
        assert r.frozen, r.skew
    # Heavier skew hurts throughput more.
    achieved = [r.achieved_rate for r in results]
    assert achieved == sorted(achieved, reverse=True)
