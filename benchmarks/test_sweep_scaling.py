"""Sweep executor scaling: equivalence and wall-clock speedup.

Runs the committed CI smoke grid — scaled to 16 campaigns per cell so
a multi-core runner has enough work to amortize pool startup — twice:
serially (``jobs=1``) and on a 4-worker process pool (``jobs=4``).
Checks the sweep execution contract from both sides:

* **equivalence**: scorecards and the rendered sensitivity report are
  byte-identical between backends (``--jobs`` never changes a byte);
* **speedup**: on a ≥ 4-core runner the pool finishes the grid at
  least 2.5× faster than the serial baseline. On smaller runners the
  wall-clock numbers are still measured and emitted, but the threshold
  is not asserted — a 1-core box cannot demonstrate parallelism.
"""

import dataclasses
import os
import pathlib
import time

from benchmarks._util import emit, run_once
from repro.sweeps import (
    build_sweep_report,
    load_spec,
    render_sweep_json,
    run_sweep,
)

SPEC_PATH = (
    pathlib.Path(__file__).parent.parent
    / "tests" / "sweeps" / "smoke_grid.toml"
)
CAMPAIGNS = 16
SPEEDUP_FLOOR = 2.5
SPEEDUP_CORES = 4


def _spec():
    return dataclasses.replace(
        load_spec(str(SPEC_PATH)), campaigns=CAMPAIGNS
    )


def _timed(jobs):
    spec = _spec()
    start = time.perf_counter()  # repro: allow[REPRO101] — benchmark measures wall clock
    result = run_sweep(spec, jobs=jobs)
    return result, time.perf_counter() - start  # repro: allow[REPRO101]


def test_sweep_parallel_speedup(benchmark):
    serial, serial_seconds = run_once(benchmark, lambda: _timed(1))
    parallel, parallel_seconds = _timed(SPEEDUP_CORES)

    cores = os.cpu_count() or 1
    cells = len(serial.grid.specs)
    speedup = serial_seconds / parallel_seconds
    emit(
        "sweep_parallel_speedup",
        "\n".join([
            f"Sweep executor: smoke grid x {CAMPAIGNS} campaigns "
            f"({cells} executor cells), Heron wordcount",
            f"  cores available   {cores}",
            f"  serial  (jobs=1)  {serial_seconds:8.2f} s",
            f"  pooled  (jobs={SPEEDUP_CORES})  {parallel_seconds:8.2f} s",
            f"  speedup           {speedup:8.2f}x"
            + ("" if cores >= SPEEDUP_CORES else
               f"  (not asserted: < {SPEEDUP_CORES} cores)"),
        ]),
    )

    # The executor is an implementation detail: same cells, same bytes.
    assert parallel.scorecards == serial.scorecards
    assert render_sweep_json(
        build_sweep_report(parallel)
    ) == render_sweep_json(build_sweep_report(serial))

    if cores >= SPEEDUP_CORES:
        assert speedup >= SPEEDUP_FLOOR, (
            f"jobs={SPEEDUP_CORES} on {cores} cores only reached "
            f"{speedup:.2f}x over serial (< {SPEEDUP_FLOOR}x)"
        )
