"""Extension: DS2 on the full Nexmark suite (Q4/Q6/Q7/Q9).

The paper evaluates six queries; a controller that truly generalizes
should handle the remaining classic Nexmark queries without any
per-query tuning. This benchmark runs DS2 with the paper's Table 4
settings on the extended queries and checks the same SASO behaviour:
at most three steps, same final configuration from under- and
over-provisioned starts.
"""

from benchmarks._util import emit, run_once
from repro.core.controller import ControlLoop
from repro.core.manager import DS2Controller, ManagerConfig
from repro.core.policy import DS2Policy
from repro.dataflow.physical import PhysicalPlan
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.experiments.report import format_steps, format_table
from repro.workloads.nexmark.queries_ext import EXTENDED_QUERIES


def converge(query, initial):
    graph = query.flink_graph()
    plan = PhysicalPlan(
        graph,
        query.initial_parallelism(graph, initial),
        max_parallelism=36,
    )
    sim = Simulator(
        plan, FlinkRuntime(),
        EngineConfig(tick=0.25, track_record_latency=False),
    )
    controller = DS2Controller(
        DS2Policy(graph),
        ManagerConfig(warmup_intervals=1, activation_intervals=5),
    )
    loop = ControlLoop(sim, controller, policy_interval=30.0)
    result = loop.run(1500.0)
    steps = [e.applied[query.main_operator] for e in result.events]
    return steps, sim.plan.parallelism_of(query.main_operator)


def test_extended_queries(benchmark):
    initials = (8, 16, 24)

    def experiment():
        table = {}
        for query in EXTENDED_QUERIES:
            for initial in initials:
                table[(query.name, initial)] = converge(query, initial)
        return table

    table = run_once(benchmark, experiment)
    rows = []
    for query in EXTENDED_QUERIES:
        for initial in initials:
            steps, final = table[(query.name, initial)]
            rows.append(
                (query.name, initial, format_steps(steps), final,
                 query.indicated_flink)
            )
    emit(
        "extended_queries",
        format_table(
            ("query", "initial", "steps", "final", "calibrated optimum"),
            rows,
            title=(
                "Extension: DS2 on the remaining Nexmark queries "
                "(Q4/Q6/Q7/Q9)"
            ),
        ),
    )
    for query in EXTENDED_QUERIES:
        finals = {
            table[(query.name, initial)][1] for initial in initials
        }
        assert finals == {query.indicated_flink}, query.name
        for initial in initials:
            steps, _final = table[(query.name, initial)]
            assert len(steps) <= 3, (query.name, initial)
