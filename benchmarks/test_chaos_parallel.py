"""Parallel chaos executor: equivalence and wall-clock speedup.

Runs the 20-campaign ``mixed`` acceptance batch twice — serially
(``jobs=1``) and on a 4-worker process pool (``jobs=4``) — and checks
the executor contract from both sides:

* **equivalence**: scorecards and the rendered report are byte-identical
  between backends (the committed ``chaos_scorecards.txt`` artifact does
  not depend on ``--jobs``);
* **speedup**: on a ≥ 4-core runner the pool finishes the batch at
  least 2.5× faster than the serial baseline. On smaller runners the
  wall-clock numbers are still measured and emitted, but the threshold
  is not asserted — a 1-core box cannot demonstrate parallelism.

Recovery sweeps are excluded (``include_recovery=False``) so the timing
isolates exactly the campaign cells the executor parallelises.
"""

import os
import time

from benchmarks._util import emit, run_once
from repro.experiments.chaos import chaos_report, run_chaos

CAMPAIGNS = 20
SPEEDUP_FLOOR = 2.5
SPEEDUP_CORES = 4


def _timed(jobs):
    start = time.perf_counter()  # repro: allow[REPRO101] — benchmark measures wall clock
    result = run_chaos(
        profile="mixed",
        campaigns=CAMPAIGNS,
        seed=1,
        include_recovery=False,
        jobs=jobs,
    )
    return result, time.perf_counter() - start  # repro: allow[REPRO101]


def test_chaos_parallel_speedup(benchmark):
    serial, serial_seconds = run_once(benchmark, lambda: _timed(1))
    parallel, parallel_seconds = _timed(SPEEDUP_CORES)

    cores = os.cpu_count() or 1
    speedup = serial_seconds / parallel_seconds
    emit(
        "chaos_parallel_speedup",
        "\n".join([
            f"Parallel chaos executor: {CAMPAIGNS}-campaign 'mixed' "
            "batch, 3 controllers, Heron wordcount",
            f"  cores available   {cores}",
            f"  serial  (jobs=1)  {serial_seconds:8.2f} s",
            f"  pooled  (jobs={SPEEDUP_CORES})  {parallel_seconds:8.2f} s",
            f"  speedup           {speedup:8.2f}x"
            + ("" if cores >= SPEEDUP_CORES else
               f"  (not asserted: < {SPEEDUP_CORES} cores)"),
        ]),
    )

    # The executor is an implementation detail: same cells, same bytes.
    assert parallel.scorecards == serial.scorecards
    assert parallel.aggregates == serial.aggregates
    assert chaos_report(parallel) == chaos_report(serial)

    if cores >= SPEEDUP_CORES:
        assert speedup >= SPEEDUP_FLOOR, (
            f"jobs={SPEEDUP_CORES} on {cores} cores only reached "
            f"{speedup:.2f}x over serial (< {SPEEDUP_FLOOR}x)"
        )
