"""Checkpoint journal: per-cell durability cost and resume equivalence.

Runs the smoke chaos batch three ways — plain serial, supervised with
an fsynced journal, and resumed from a half-complete journal — and
measures what the crash-safety layer costs:

* **overhead**: the journaled run may not exceed the plain run by more
  than ``OVERHEAD_CEILING`` (the journal appends one fsynced JSONL
  record per completed cell; the cells themselves dominate);
* **equivalence**: scorecards and the rendered report are identical
  across all three paths — durability is an implementation detail;
* **resume speedup**: a resume that finds half the batch in the
  journal skips those cells and must beat the cold run.

Recovery sweeps are excluded so the timing isolates the campaign cells
the journal wraps.
"""

import json
import time

from benchmarks._util import emit, run_once
from repro.experiments.chaos import chaos_report, run_chaos

PROFILE = "smoke"
CAMPAIGNS = 4
OVERHEAD_CEILING = 1.5


def _timed(**kwargs):
    start = time.perf_counter()  # repro: allow[REPRO101] — benchmark measures wall clock
    result = run_chaos(
        profile=PROFILE,
        campaigns=CAMPAIGNS,
        seed=1,
        include_recovery=False,
        **kwargs,
    )
    return result, time.perf_counter() - start  # repro: allow[REPRO101]


def _truncate_journal(path, keep_cells):
    """Rewrite the journal to the header plus its first N cells."""
    kept, cells = [], 0
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            if record.get("record") == "cell":
                if cells == keep_cells:
                    break
                cells += 1
            kept.append(line)
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(kept)


def test_checkpoint_overhead_and_resume(benchmark, tmp_path):
    journal = str(tmp_path / "chaos.ckpt")
    plain, plain_seconds = run_once(benchmark, lambda: _timed())
    journaled, journaled_seconds = _timed(checkpoint=journal)

    cells = len(journaled.scorecards)
    _truncate_journal(journal, cells // 2)
    resumed, resumed_seconds = _timed(checkpoint=journal, resume=True)

    overhead = journaled_seconds / plain_seconds
    emit(
        "checkpoint_overhead",
        "\n".join([
            f"Checkpoint journal: {CAMPAIGNS}-campaign '{PROFILE}' "
            f"batch, {cells} cells, fsync per cell",
            f"  plain serial        {plain_seconds:8.2f} s",
            f"  journaled           {journaled_seconds:8.2f} s "
            f"({overhead:.2f}x)",
            f"  resumed ({cells // 2}/{cells} done)  "
            f"{resumed_seconds:8.2f} s",
        ]),
    )

    # Durability is an implementation detail: same cells, same bytes.
    assert journaled.scorecards == plain.scorecards
    assert resumed.scorecards == plain.scorecards
    assert journaled.aggregates == plain.aggregates
    assert chaos_report(journaled) == chaos_report(resumed)
    assert journaled.coverage.complete
    assert resumed.coverage.complete

    assert overhead <= OVERHEAD_CEILING, (
        f"journaling cost {overhead:.2f}x over the plain run "
        f"(ceiling {OVERHEAD_CEILING}x)"
    )
    assert resumed_seconds < journaled_seconds, (
        f"resume with half the cells journaled took "
        f"{resumed_seconds:.2f}s vs {journaled_seconds:.2f}s cold"
    )
