"""Robustness: convergence under injected faults (Heron wordcount).

One deterministic campaign — a rejected first rescale, 50% source
metric dropout for three minutes, and a flatmap instance crash — run
against three controllers. The headline results:

* hardened DS2 retries the rejected rescale with backoff, holds its
  configuration through the dropout, and re-converges to the paper's
  optimum after the crash without overshoot;
* legacy DS2 (hardening off) reads the dropout's halved telemetry as a
  halved workload and pays two extra reconfiguration outages;
* Dhalion ignores rate telemetry and is indifferent to the dropout.
"""

from benchmarks._util import emit, run_once
from repro.experiments.fault_tolerance import (
    CRASH_AT,
    fault_tolerance_report,
    run_fault_tolerance,
)


def test_fault_tolerance(benchmark):
    results = run_once(
        benchmark, lambda: run_fault_tolerance(tick=0.5)
    )
    emit("fault_tolerance", fault_tolerance_report(results))

    by_name = {r.controller: r for r in results}
    hardened = by_name["ds2"]
    legacy = by_name["ds2-legacy"]

    # The rejected first rescale is retried; the job is never left
    # partially reconfigured and still reaches the paper's optimum.
    assert hardened.failed_rescales >= 1
    assert hardened.final_flatmap == hardened.optimal_flatmap
    assert hardened.final_count == hardened.optimal_count

    # Hardened DS2 holds through the dropout; legacy reproduces the
    # spurious scale-down and pays extra reconfigurations for it.
    assert hardened.held_through_dropout
    assert not legacy.held_through_dropout
    assert legacy.steps > hardened.steps

    # Crash recovery: no scaling churn afterwards, no overshoot.
    late_events = [
        e for e in hardened.run.loop_result.events if e.time > CRASH_AT
    ]
    assert len(late_events) <= 3
    assert hardened.achieved_rate >= 0.95 * hardened.target_rate
