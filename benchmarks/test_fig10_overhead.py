"""Figure 10 / section 5.6: instrumentation overhead.

Every Nexmark query runs at its converged configuration with the DS2
instrumentation off (vanilla) and on (instr); the table compares median
latencies. The paper's envelope: at most 13% on Flink, at most 20% on
Timely (Heron needs no extra instrumentation). The simulator's
per-record instrumentation multipliers are 8% / 15%; the end-to-end
effect depends on queueing headroom, which this experiment measures.
"""

from benchmarks._util import emit, run_once
from repro.experiments.accuracy import converged_flink_plan
from repro.experiments.overhead import (
    measure_flink_overhead,
    measure_timely_overhead,
)
from repro.experiments.report import format_table
from repro.workloads.nexmark import ALL_QUERIES


def test_fig10_overhead(benchmark):
    def experiment():
        points = []
        for query in ALL_QUERIES:
            base = converged_flink_plan(
                query, duration=1200.0, tick=0.25
            )
            points.append(
                measure_flink_overhead(
                    query, duration=240.0, tick=0.25, base_plan=base
                )
            )
            points.append(
                measure_timely_overhead(query, duration=120.0, tick=0.1)
            )
        return points

    points = run_once(benchmark, experiment)

    rows = [
        (
            p.query,
            p.runtime,
            f"{p.vanilla_median * 1000:.1f}",
            f"{p.instrumented_median * 1000:.1f}",
            f"{p.relative_overhead:+.0%}",
        )
        for p in points
    ]
    emit(
        "fig10_overhead",
        format_table(
            ("query", "runtime", "vanilla p50 (ms)", "instr p50 (ms)",
             "overhead"),
            rows,
            title=(
                "Figure 10: instrumentation overhead (vanilla vs instr)"
            ),
        ),
    )

    for p in points:
        # Instrumentation never speeds anything up...
        assert p.instrumented_median >= p.vanilla_median * 0.95
        # ...and the overhead stays small — the paper's qualitative
        # claim ("performance penalties are an acceptable trade-off").
        if p.runtime == "flink":
            assert p.relative_overhead <= 0.35, p.query
        else:
            assert p.relative_overhead <= 0.60, p.query
