"""Ablation: learned non-linear scaling curves (section 3.4 extension).

The paper's future-work direction — "good approximation of non-linear
rates ... gradually learned by DS2" — implemented as a two-parameter
coordination-law learner. Compared against vanilla DS2 on the queries
with the longest convergence climbs, plus the offline provisioning
variant (section 3's other optional mode) which needs zero online
steps when the workload is known a priori.
"""

from benchmarks._util import emit, run_once
from repro.core.controller import ControlLoop
from repro.core.learning import LearningDS2Controller
from repro.core.manager import DS2Controller, ManagerConfig
from repro.core.offline import offline_provisioning
from repro.core.policy import DS2Policy
from repro.dataflow.physical import PhysicalPlan
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.experiments.report import format_table
from repro.workloads.nexmark import get_query


def run_controller(query_name, initial, controller_class):
    query = get_query(query_name)
    graph = query.flink_graph()
    plan = PhysicalPlan(
        graph,
        query.initial_parallelism(graph, initial),
        max_parallelism=36,
    )
    sim = Simulator(
        plan, FlinkRuntime(),
        EngineConfig(tick=0.25, track_record_latency=False),
    )
    controller = controller_class(
        DS2Policy(graph),
        ManagerConfig(warmup_intervals=1, activation_intervals=5),
    )
    loop = ControlLoop(sim, controller, policy_interval=30.0)
    result = loop.run(1500.0)
    return (
        result.scaling_steps,
        sim.plan.parallelism_of(query.main_operator),
    )


def test_ablation_learning(benchmark):
    cases = [("Q11", 8), ("Q3", 8), ("Q1", 28)]

    def experiment():
        rows = []
        for query_name, initial in cases:
            base_steps, base_final = run_controller(
                query_name, initial, DS2Controller
            )
            learn_steps, learn_final = run_controller(
                query_name, initial, LearningDS2Controller
            )
            rows.append((
                query_name, initial,
                base_steps, base_final,
                learn_steps, learn_final,
            ))
        return rows

    rows = run_once(benchmark, experiment)
    emit(
        "ablation_learning",
        format_table(
            ("query", "initial", "ds2 steps", "ds2 final",
             "learning steps", "learning final"),
            rows,
            title=(
                "Ablation: vanilla DS2 vs learned scaling curves "
                "(section 3.4 future work)"
            ),
        ),
    )
    for (query_name, _initial, base_steps, base_final,
         learn_steps, learn_final) in rows:
        expected = get_query(query_name).indicated_flink
        # Learning never changes the answer...
        assert learn_final == expected == base_final
        # ...and never needs more steps (strictly fewer on the
        # longest climb).
        assert learn_steps <= base_steps
    q11 = rows[0]
    assert q11[4] < q11[2]


def test_offline_provisioning_needs_no_online_steps(benchmark):
    """Offline micro-benchmarks size Q1 correctly before deployment:
    the online controller finds nothing to fix."""

    def experiment():
        query = get_query("Q1")
        graph = query.flink_graph()
        plan = offline_provisioning(
            graph, query.flink_rates, duration=20.0, max_parallelism=36
        )
        sim = Simulator(
            plan, FlinkRuntime(),
            EngineConfig(tick=0.25, track_record_latency=False),
        )
        controller = DS2Controller(
            DS2Policy(graph),
            ManagerConfig(warmup_intervals=1, activation_intervals=5),
        )
        loop = ControlLoop(sim, controller, policy_interval=30.0)
        result = loop.run(900.0)
        return plan, result, sim

    plan, result, sim = run_once(benchmark, experiment)
    query = get_query("Q1")
    emit(
        "ablation_offline",
        format_table(
            ("operator", "offline plan", "online corrections"),
            [
                (name, plan.parallelism_of(name),
                 "none" if not result.events else "see events")
                for name in plan.graph.names
            ],
            title="Offline provisioning for Q1 (section 3 optional mode)",
        ),
    )
    # The offline plan is within one step of optimal: the online
    # controller either confirms it or applies at most one trim.
    assert result.scaling_steps <= 1
    assert (
        abs(
            sim.plan.parallelism_of(query.main_operator)
            - query.indicated_flink
        )
        <= 1
    )
