"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and emits
the rows both to stdout (visible with ``pytest -s``) and to a text
artifact under ``benchmarks/output/`` so the regenerated results
survive output capturing.
"""

from __future__ import annotations

import pathlib

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def emit(name: str, text: str) -> None:
    """Print ``text`` and persist it as an artifact."""
    print()
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic virtual-time simulations, so a
    single round is meaningful; re-running them would only re-measure
    the same work.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
