"""Figure 6 / section 5.2: DS2 vs Dhalion on the Heron wordcount.

Dhalion takes many single-operator speculative steps (over 30 minutes)
and ends over-provisioned; DS2 identifies the exact optimum — 10
FlatMap, 20 Count — in a single step after one 60-second metrics
window, i.e. two orders of magnitude faster.
"""

from benchmarks._util import emit, run_once
from repro.experiments.comparison import (
    parallelism_series,
    run_dhalion,
    run_ds2,
)
from repro.experiments.report import format_table
from repro.workloads.wordcount import COUNT, FLATMAP


def test_fig6_ds2_vs_dhalion(benchmark):
    def experiment():
        return run_dhalion(duration=3600.0, tick=0.5), run_ds2(
            duration=420.0, tick=0.5
        )

    dhalion, ds2 = run_once(benchmark, experiment)

    rows = []
    for result in (dhalion, ds2):
        for event in result.run.loop_result.events:
            rows.append((
                result.controller,
                f"{event.time:7.0f}",
                event.applied[FLATMAP],
                event.applied[COUNT],
            ))
    timeline = format_table(
        ("controller", "time (s)", "flatmap", "count"),
        rows,
        title="Figure 6: parallelism over time (scaling events)",
    )
    summary = format_table(
        (
            "controller", "steps", "converged (s)",
            "final flatmap (opt 10)", "final count (opt 20)",
            "overprovisioning",
        ),
        [
            (
                r.controller,
                r.steps,
                f"{r.convergence_time:.0f}",
                r.final_flatmap,
                r.final_count,
                f"{r.overprovisioning_factor:.2f}x",
            )
            for r in (dhalion, ds2)
        ],
        title="Section 5.2 summary",
    )
    emit("fig6_ds2_vs_dhalion", timeline + "\n\n" + summary)

    # DS2: one step, exact optimum, after one 60 s window.
    assert ds2.steps == 1
    assert (ds2.final_flatmap, ds2.final_count) == (10, 20)
    assert ds2.convergence_time <= 120.0
    # Dhalion: many steps, much slower, over-provisioned.
    assert dhalion.steps >= 5
    assert dhalion.convergence_time / ds2.convergence_time > 10
    assert dhalion.overprovisioning_factor > 1.2
