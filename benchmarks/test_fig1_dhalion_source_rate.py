"""Figure 1: effect of Dhalion's scaling decisions on the source rate.

The under-provisioned Heron wordcount runs under the Dhalion-style
controller; the regenerated series shows the observed source rate
climbing toward the 1M sentences/min target across many scaling
decisions, with redeploy dips and backlog-drain overshoot — taking on
the order of half an hour of virtual time to converge.
"""

from benchmarks._util import emit, run_once
from repro.experiments.comparison import run_dhalion, source_rate_series
from repro.experiments.report import format_rate, format_table


def test_fig1_dhalion_source_rate(benchmark):
    result = run_once(
        benchmark, lambda: run_dhalion(duration=3600.0, tick=0.5)
    )
    series = source_rate_series(result)
    # Downsample to one row per 2 minutes for the report.
    rows = []
    next_time = 0.0
    for time, rate in series:
        if time >= next_time:
            bar = "#" * int(30 * min(1.0, rate / result.target_rate))
            rows.append((f"{time:7.0f}", format_rate(rate), bar))
            next_time += 120.0
    table = format_table(
        ("time (s)", "observed source rate", ""),
        rows,
        title=(
            "Figure 1: source rate under Dhalion "
            f"(target {format_rate(result.target_rate)}/s, "
            f"{result.steps} scaling decisions, converged at "
            f"t={result.convergence_time:.0f}s)"
        ),
    )
    emit("fig1_dhalion_source_rate", table)

    # Shape assertions mirroring the paper's narrative.
    assert result.steps >= 5
    assert result.convergence_time > 600.0
    assert result.achieved_rate >= result.target_rate * 0.98
