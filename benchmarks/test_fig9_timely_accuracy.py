"""Figure 9 / section 5.5: per-epoch latency CDFs on Timely.

Q3, Q5, and Q11 at fixed worker counts. Timely has no backpressure, so
under-provisioned configurations let queues grow and epoch latencies
explode; the DS2-indicated four workers are the minimum that processes
one second of data in under a second. Q5's sliding window stashes and
forwards data in bursts, so a bounded fraction of its epochs exceeds
the target regardless of provisioning — the load-spike effect the
paper discusses.
"""

from benchmarks._util import emit, run_once
from repro.experiments.accuracy import FIGURE9_QUERIES, run_figure9
from repro.experiments.report import format_table


def test_fig9_timely_accuracy(benchmark):
    def experiment():
        return {
            query.name: run_figure9(
                query, worker_counts=(2, 3, 4, 6), duration=120.0,
                tick=0.1,
            )
            for query in FIGURE9_QUERIES
        }

    results = run_once(benchmark, experiment)

    rows = []
    for name, points in results.items():
        for p in points:
            dist = p.epoch_latency
            rows.append((
                name,
                f"{p.workers}" + (" <- indicated" if p.is_indicated
                                  else ""),
                f"{dist.median():.2f}" if len(dist) else "inf",
                f"{dist.quantile(0.99):.2f}" if len(dist) else "inf",
                f"{p.fraction_above_target:.0%}",
            ))
    emit(
        "fig9_timely_accuracy",
        format_table(
            ("query", "workers", "epoch p50 (s)", "epoch p99 (s)",
             "epochs > 1 s"),
            rows,
            title="Figure 9: per-epoch latency vs global worker count",
        ),
    )

    for name, points in results.items():
        by_workers = {p.workers: p for p in points}
        # Under-provisioned: essentially every epoch misses the target.
        assert by_workers[2].fraction_above_target > 0.7, name
        # The indicated 4 workers bring the p99 down by an order of
        # magnitude relative to 2 workers.
        assert (
            by_workers[4].epoch_latency.quantile(0.99)
            < by_workers[2].epoch_latency.quantile(0.99) / 5
        ), name
        # Extra workers beyond the optimum buy nothing.
        assert (
            by_workers[6].epoch_latency.median()
            >= by_workers[4].epoch_latency.median() * 0.5
        )
    # Q3 and Q11 meet the 1 s target at 4 workers; Q5 keeps a bounded
    # window-spike tail (the paper reports 18% over by <= 0.5 s).
    assert results["Q3"][2].fraction_above_target < 0.05
    assert results["Q11"][2].fraction_above_target < 0.05
    q5_at_4 = results["Q5"][2]
    assert 0.0 < q5_at_4.fraction_above_target < 0.8
    assert q5_at_4.epoch_latency.quantile(0.99) < 1.0 + 0.6
