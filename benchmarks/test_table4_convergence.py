"""Table 4 / section 5.4: DS2 convergence steps for the Nexmark queries.

All six queries (Table 3 source rates) from initial parallelism 8-28
under DS2 with a 30 s interval, 30 s warm-up, five-interval activation.
The regenerated table shows the per-step parallelism of each query's
main operator; the headline result holds: at most three steps, always
to the same final configuration.
"""

import pytest

from benchmarks._util import emit, run_once
from repro.experiments.convergence import (
    PAPER_INITIAL_CONFIGS,
    format_table4,
    max_steps,
    run_table4,
    run_timely_convergence_cell,
)
from repro.experiments.report import format_table
from repro.workloads.nexmark import ALL_QUERIES


def test_table4_flink_convergence(benchmark):
    cells = run_once(
        benchmark, lambda: run_table4(duration=1500.0, tick=0.25)
    )
    emit("table4_convergence", format_table4(cells))

    assert max_steps(cells) <= 3
    # Every query converges to the same final configuration from every
    # starting point (accuracy + stability), matching Figure 8.
    for query in ALL_QUERIES:
        finals = {
            cells[(query.name, initial)].final
            for initial in PAPER_INITIAL_CONFIGS
        }
        assert finals == {query.indicated_flink}


def test_table4_timely_counterpart(benchmark):
    """Section 5.4: 'We also ran the same queries using Timely Dataflow
    and the results were similar' — DS2 picks 4 workers everywhere."""
    def experiment():
        cells = {}
        for query in ALL_QUERIES:
            for initial in (2, 8):
                cells[(query.name, initial)] = (
                    run_timely_convergence_cell(
                        query, initial, duration=900.0, tick=0.25
                    )
                )
        return cells

    cells = run_once(benchmark, experiment)
    rows = [
        (
            name,
            initial,
            "→".join(map(str, cell.steps)) or "stable",
            cell.final,
        )
        for (name, initial), cell in sorted(cells.items())
    ]
    emit(
        "table4_timely",
        format_table(
            ("query", "initial workers", "steps", "final"),
            rows,
            title="Table 4 (Timely counterpart): global worker count",
        ),
    )
    for cell in cells.values():
        assert cell.final == 4
        assert cell.step_count <= 3
