"""Ablation: the scaling manager's operational knobs (section 4.2.1).

Runs Q11 — the noisiest query, thanks to its session window — with
different activation times, and the Heron wordcount with and without
the true-rate model (i.e. DS2 vs a hypothetical DS2 fed *observed*
rates). Shows why each piece of the manager exists:

* activation smoothing prevents window-noise-driven churn;
* true rates (not observed rates) are what make one-step sizing
  possible at all.
"""

from benchmarks._util import emit, run_once
from repro.core.controller import Controller
from repro.core.manager import DS2Controller, ManagerConfig
from repro.core.policy import DS2Policy
from repro.engine.runtimes import FlinkRuntime, HeronRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.dataflow.physical import PhysicalPlan
from repro.experiments.harness import run_controlled
from repro.experiments.report import format_table
from repro.workloads.nexmark import get_query
from repro.workloads.wordcount import (
    COUNT,
    FLATMAP,
    heron_wordcount_graph,
)

import math


def run_q11(activation):
    query = get_query("Q11")
    graph = query.flink_graph()
    run = run_controlled(
        graph=graph,
        runtime=FlinkRuntime(),
        initial_parallelism=query.initial_parallelism(graph, 8),
        controller=DS2Controller(
            DS2Policy(graph),
            ManagerConfig(
                warmup_intervals=1, activation_intervals=activation
            ),
        ),
        policy_interval=30.0,
        duration=1800.0,
        max_parallelism=36,
        engine_config=EngineConfig(tick=0.25, track_record_latency=False),
    )
    return run


class ObservedRateOracle:
    """What a one-shot sizing from *observed* rates would propose for
    the under-provisioned Heron wordcount — the policy section 2's
    'external observer' would build."""

    def propose(self):
        graph = heron_wordcount_graph()
        plan = PhysicalPlan(graph, {name: 1 for name in graph.names})
        sim = Simulator(
            plan, HeronRuntime(),
            EngineConfig(tick=0.5, track_record_latency=False),
        )
        sim.run_for(60.0)
        window = sim.collect_metrics()
        target = sum(sim.source_target_rates().values())
        proposals = {}
        for op in (FLATMAP, COUNT):
            observed = window.observed_processing_rate(op)
            upstream_observed = (
                target if op == FLATMAP
                else window.observed_output_rate(FLATMAP)
            )
            proposals[op] = max(
                1, math.ceil(upstream_observed / max(observed, 1e-9))
            )
        return proposals


def test_ablation_activation_time(benchmark):
    def experiment():
        return {a: run_q11(a) for a in (1, 3, 5)}

    runs = run_once(benchmark, experiment)
    rows = []
    for activation, run in runs.items():
        steps = [
            e.applied["user_sessions"] for e in run.loop_result.events
        ]
        rows.append((
            activation,
            len(steps),
            "→".join(map(str, steps)) or "stable",
            run.final_parallelism["user_sessions"],
        ))
    emit(
        "ablation_activation",
        format_table(
            ("activation intervals", "actions", "steps", "final"),
            rows,
            title=(
                "Ablation: activation time on Q11 (session window "
                "noise; paper section 4.2.1)"
            ),
        ),
    )
    # Longer activation windows mean fewer scaling actions...
    assert len(runs[5].loop_result.events) <= len(
        runs[1].loop_result.events
    )
    # ...and with the paper's setting the final answer is the paper's.
    assert runs[5].final_parallelism["user_sessions"] == 28


def test_ablation_true_vs_observed_rates(benchmark):
    """Observed rates under backpressure wildly mis-size the dataflow;
    true rates size it exactly (the Figure 2 argument)."""
    def experiment():
        return ObservedRateOracle().propose()

    observed_proposal = run_once(benchmark, experiment)
    emit(
        "ablation_true_vs_observed",
        format_table(
            ("operator", "observed-rate proposal", "true-rate (DS2)",
             "actual optimum"),
            [
                (FLATMAP, observed_proposal[FLATMAP], 10, 10),
                (COUNT, observed_proposal[COUNT], 20, 20),
            ],
            title=(
                "Ablation: sizing from observed vs true rates "
                "(under-provisioned Heron wordcount)"
            ),
        ),
    )
    # The observed-rate proposal is wrong for at least one operator —
    # backpressure hides the real demand/capacity relationship.
    assert (
        observed_proposal[FLATMAP] != 10
        or observed_proposal[COUNT] != 20
    )
