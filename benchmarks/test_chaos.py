"""Robustness: seeded chaos campaigns with SASO scorecards.

The full acceptance batch of the chaos subsystem: 20 sampled campaigns
of the ``mixed`` profile (crashes, metric dropout, metrics lag, counter
corruption, rescale failures) × three controllers on the Heron
wordcount, scored into SASO scorecards, plus the crash-only recovery
comparison across the three runtimes. Headline results:

* hardened DS2 wins the aggregate SASO score against both legacy DS2
  and Dhalion over the whole campaign distribution, not just a
  hand-picked schedule;
* the batch is deterministic — re-running it yields byte-identical
  scorecards and report;
* the three runtimes show distinct crash-recovery distributions
  (Flink savepoint restore > Heron container restart > Timely peer
  re-sync).

Campaign cells honour the ``REPRO_JOBS`` environment variable: set
``REPRO_JOBS=4`` to run this batch on a process pool. The scorecards
and the emitted artifact are byte-identical either way (see
``test_chaos_parallel.py``).
"""

from benchmarks._util import emit, run_once
from repro.experiments.chaos import chaos_report, run_chaos


def test_chaos_campaigns(benchmark):
    result = run_once(
        benchmark,
        lambda: run_chaos(profile="mixed", campaigns=20, seed=1),
    )
    emit("chaos_scorecards", chaos_report(result))

    # Hardened DS2 tops the ranking on mean SASO score.
    assert result.ranking()[0] == "ds2"
    ds2 = result.aggregates["ds2"]
    legacy = result.aggregates["ds2-legacy"]
    dhalion = result.aggregates["dhalion"]
    assert ds2.mean_score < legacy.mean_score
    assert ds2.mean_score < dhalion.mean_score
    # The hardening specifically suppresses oscillation under telemetry
    # faults — legacy flaps, hardened mostly holds.
    assert ds2.mean_oscillations < legacy.mean_oscillations

    # Distinct per-runtime recovery distributions, meaningfully apart.
    means = {
        runtime: sum(samples) / len(samples)
        for runtime, samples in result.recovery.items()
    }
    assert means["flink"] > 1.5 * means["heron"] > 1.5 * means["timely"]

    # Determinism: the same batch replays to identical scorecards.
    replay = run_chaos(profile="mixed", campaigns=20, seed=1)
    assert replay.scorecards == result.scorecards
    assert chaos_report(replay) == chaos_report(result)
