#!/usr/bin/env python
"""Profile the simulator tick loop and measure backend speedup.

Produces the two committed performance artifacts that back
``docs/performance.md``:

* ``benchmarks/output/profile_tick.txt`` — cProfile hot-function
  tables for the ``object`` and ``vector`` engine backends on the
  Nexmark Q5 benchmark cell, so regressions show up as a changed
  ranking rather than a vague slowdown;
* ``benchmarks/output/engine_speedup.txt`` — ticks/second for both
  backends across a parallelism sweep, demonstrating where the
  struct-of-arrays backend's advantage comes from (the object
  backend's per-instance Python work scales with parallelism, the
  vector backend's is near-flat).

Usage::

    PYTHONPATH=src python scripts/profile_tick.py [--quick]

``--quick`` shortens the measured windows (~5x faster, noisier
numbers) for local iteration; the committed artifacts are produced by
a full run. The simulation itself is deterministic virtual time — only
the wall-clock timings vary between runs.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pathlib
import pstats
import sys
import time
from typing import List, Tuple

from repro.dataflow.physical import PhysicalPlan
from repro.engine.runtimes import FlinkRuntime
from repro.engine.simulator import EngineConfig, Simulator
from repro.engine.vectorized import BACKENDS
from repro.workloads.nexmark import get_query

OUTPUT_DIR = pathlib.Path(__file__).resolve().parent.parent / (
    "benchmarks/output"
)

#: Parallelism sweep for the scaling table (total slots handed to
#: ``initial_parallelism``; Q5 gives them to the windowed operator).
SWEEP = (32, 64, 128, 256, 512)

#: The benchmark cell asserted by
#: ``benchmarks/test_engine_performance.py`` (>= 5x).
BENCH_SLOTS = 256


def build_simulator(backend: str, slots: int) -> Simulator:
    """The Q5 benchmark cell: Flink runtime, sliding window, record
    latency tracking on (the most instrumented configuration)."""
    query = get_query("Q5")
    graph = query.flink_graph()
    parallelism = query.initial_parallelism(graph, slots)
    plan = PhysicalPlan(
        graph,
        parallelism,
        max_parallelism=max(parallelism.values()) + 8,
    )
    return Simulator(
        plan,
        FlinkRuntime(),
        EngineConfig(tick=0.25, track_record_latency=True),
        backend=backend,
    )


def measure_ticks_per_second(
    backend: str, slots: int, seconds: float
) -> float:
    """Steady-state wall-clock ticks/second after a warm-up."""
    sim = build_simulator(backend, slots)
    sim.run_for(5.0)
    ticks = 0
    start = time.perf_counter()  # repro: allow[REPRO101] — profiler measures wall clock
    while time.perf_counter() - start < seconds:  # repro: allow[REPRO101]
        sim.step()
        ticks += 1
    return ticks / (time.perf_counter() - start)  # repro: allow[REPRO101]


def profile_backend(backend: str, slots: int, virtual: float) -> str:
    """cProfile hot-function table for ``virtual`` simulated seconds."""
    sim = build_simulator(backend, slots)
    sim.run_for(5.0)
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run_for(virtual)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("tottime").print_stats(20)
    # Drop the absolute-path preamble; keep the table.
    lines = stream.getvalue().splitlines()
    table = [
        line.replace(str(pathlib.Path.cwd()) + "/", "")
        for line in lines
        if line.strip()
    ]
    return "\n".join(table)


def scaling_table(seconds: float) -> Tuple[str, float]:
    """Sweep the parallelism grid; returns the formatted table and the
    speedup measured at the asserted benchmark cell."""
    rows: List[str] = []
    rows.append(
        f"{'slots':>6} {'object t/s':>12} {'vector t/s':>12} "
        f"{'speedup':>8}"
    )
    bench_speedup = 0.0
    for slots in SWEEP:
        object_tps = measure_ticks_per_second("object", slots, seconds)
        vector_tps = measure_ticks_per_second("vector", slots, seconds)
        speedup = vector_tps / object_tps
        if slots == BENCH_SLOTS:
            bench_speedup = speedup
        rows.append(
            f"{slots:>6} {object_tps:>12.0f} {vector_tps:>12.0f} "
            f"{speedup:>7.2f}x"
        )
    return "\n".join(rows), bench_speedup


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short measurement windows for local iteration",
    )
    args = parser.parse_args(argv)
    seconds = 0.5 if args.quick else 3.0
    virtual = 20.0 if args.quick else 100.0

    OUTPUT_DIR.mkdir(exist_ok=True)

    sections = []
    for backend in BACKENDS:
        print(f"profiling {backend} backend ...", flush=True)
        table = profile_backend(backend, BENCH_SLOTS, virtual)
        sections.append(
            f"== cProfile: backend={backend} nexmark-q5 "
            f"slots={BENCH_SLOTS} ({virtual:.0f}s virtual) ==\n{table}"
        )
    profile_text = "\n\n".join(sections)
    (OUTPUT_DIR / "profile_tick.txt").write_text(profile_text + "\n")
    print(profile_text)

    print("measuring scaling table ...", flush=True)
    table, bench_speedup = scaling_table(seconds)
    header = (
        "Engine backend throughput, Nexmark Q5 (Flink runtime, "
        "tick=0.25s,\nrecord latency tracking on). slots = total "
        "instances requested from\ninitial_parallelism; Q5 assigns "
        "them to the windowed hot_items operator.\n"
    )
    speedup_text = (
        header
        + "\n"
        + table
        + "\n\n"
        + f"benchmark cell: slots={BENCH_SLOTS}, "
        f"speedup={bench_speedup:.2f}x (asserted >= 5x by\n"
        "benchmarks/test_engine_performance.py::"
        "test_vector_backend_speedup_q5)"
    )
    (OUTPUT_DIR / "engine_speedup.txt").write_text(speedup_text + "\n")
    print()
    print(speedup_text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
