#!/usr/bin/env bash
# Tier-2 quality gate: static analysis + the full test suite.
#
# Usage: scripts/check.sh [--fast]
#
#   --fast   skip the pytest stage (lint/type-check only)
#
# Stages (in order):
#   1. ruff          - style/correctness lint (skipped if not installed)
#   2. mypy          - type check (skipped if not installed)
#   3. repro lint    - in-tree determinism linter (always runs)
#   4. parallel safety
#                    - pickle-safety / worker-shared-state /
#                      reduction-order analyzers plus stale-suppression
#                      hygiene over every shipped tree (lint fixtures
#                      excluded: they exist to violate the rules)
#   5. repro check-graph --all
#                    - graph invariants for every built-in workload
#   6. trace schema  - golden-file JSONL trace schema check
#   7. parallel chaos equivalence
#                    - smoke-profile serial vs process-pool scorecards
#   8. kill-and-resume equivalence
#                    - hard-killed chaos run resumed from its journal
#                      must match an uninterrupted run byte-for-byte
#   9. run report (golden file)
#                    - `repro report` over the committed smoke-campaign
#                      journal must render byte-identical JSON to the
#                      committed golden report
#  10. sweep (golden file + kill-and-resume)
#                    - `repro sweep run` over the committed smoke grid
#                      (two pool workers, checkpointed) and
#                      `repro sweep report` from that journal must both
#                      render byte-identical JSON to the committed
#                      golden sensitivity artifact; plus the sweep
#                      SIGKILL-and-resume equivalence tests
#  11. pytest        - tier-1 test suite
#  12. pytest (REPRO_ENGINE=vector)
#                    - the same tier-1 suite on the struct-of-arrays
#                      engine backend; passing both proves the golden
#                      trace / scorecard byte-identity oracle holds for
#                      both backends (skipped if numpy is missing)
#
# ruff and mypy are optional dev dependencies (`pip install -e .[lint]`).
# When they are missing the stage is skipped with a notice rather than
# failing, so the gate is usable in minimal containers; the in-tree
# stages (3-10) have no third-party dependencies and always run.

set -u

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
    case "$arg" in
        --fast) FAST=1 ;;
        *)
            echo "usage: scripts/check.sh [--fast]" >&2
            exit 2
            ;;
    esac
done

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

FAILURES=0

run_stage() {
    local name="$1"
    shift
    echo "==> ${name}"
    if "$@"; then
        echo "==> ${name}: OK"
    else
        local status=$?
        echo "==> ${name}: FAILED (exit ${status})" >&2
        FAILURES=$((FAILURES + 1))
    fi
    echo
}

skip_stage() {
    echo "==> $1: SKIPPED ($2)"
    echo
}

if command -v ruff >/dev/null 2>&1; then
    run_stage "ruff" ruff check src tests benchmarks examples
else
    skip_stage "ruff" "not installed; pip install -e .[lint]"
fi

if command -v mypy >/dev/null 2>&1; then
    run_stage "mypy" mypy
else
    skip_stage "mypy" "not installed; pip install -e .[lint]"
fi

run_stage "repro lint" \
    python -m repro lint src/repro scripts benchmarks examples
# Parallel-safety gate, as its own stage so its exit code (and which
# family failed) is visible in the stage summary rather than folded
# into the determinism lint above.
run_stage "parallel safety (pickle/worker-state/reduction-order)" \
    python -m repro lint \
    --select pickle-safety,worker-shared-state,reduction-order,suppressions \
    --exclude tests/analysis/fixtures \
    src/repro tests scripts benchmarks examples
run_stage "repro check-graph" python -m repro check-graph --all
# Golden-file trace schema gate: a seeded controlled run must still
# serialize byte-for-byte to tests/telemetry/golden_trace.jsonl.
# Cheap (~2s), so it runs even with --fast.
run_stage "trace schema (golden file)" \
    python -m pytest -q tests/telemetry/test_trace_io.py
# Executor equivalence gate: the process-pool backend must produce
# byte-identical scorecards to the serial one on the smoke profile.
run_stage "parallel chaos equivalence (smoke)" \
    python -m pytest -q tests/faults/test_parallel_runner.py -k smoke
# Crash-safety gate: a chaos run hard-killed mid-campaign and resumed
# from its checkpoint journal must print byte-identical output to an
# uninterrupted run (serial and process-pool).
run_stage "kill-and-resume equivalence (smoke)" \
    python -m pytest -q tests/faults/test_checkpoint.py -k kill_and_resume
# Run-report gate: the aggregated report over the committed
# smoke-campaign journal must stay byte-identical to the committed
# golden JSON. Cheap (<1s), so it runs even with --fast.
check_golden_report() {
    python -m repro report \
        --checkpoint tests/reports/smoke_checkpoint.jsonl \
        --format json \
        | diff -u tests/reports/golden_report.json -
}
run_stage "run report (golden file)" check_golden_report
# Sweep gate: running the committed smoke grid (two pool workers, with
# a checkpoint journal) and re-reporting from that journal must both
# reproduce the committed golden sensitivity artifact byte-for-byte,
# and a sweep hard-killed mid-grid must resume to the same bytes.
check_golden_sweep() {
    local journal status
    journal="$(mktemp "${TMPDIR:-/tmp}/sweep_journal.XXXXXX")" \
        || return 1
    rm -f "$journal"
    python -m repro sweep run \
        --spec tests/sweeps/smoke_grid.toml \
        --jobs 2 \
        --checkpoint "$journal" \
        --format json \
        | diff -u tests/sweeps/golden_sweep.json -
    status=$?
    if [ "$status" -eq 0 ]; then
        python -m repro sweep report \
            --spec tests/sweeps/smoke_grid.toml \
            --checkpoint "$journal" \
            --format json \
            | diff -u tests/sweeps/golden_sweep.json -
        status=$?
    fi
    rm -f "$journal"
    return "$status"
}
run_stage "sweep (golden file)" check_golden_sweep
run_stage "sweep kill-and-resume equivalence (smoke)" \
    python -m pytest -q tests/sweeps/test_sweep_equivalence.py \
    -k "kill_and_resume or report_cli"

if [ "$FAST" -eq 1 ]; then
    skip_stage "pytest" "--fast"
    skip_stage "pytest (REPRO_ENGINE=vector)" "--fast"
else
    run_stage "pytest" python -m pytest -x -q
    # The decision oracle for the vector engine backend: the whole
    # tier-1 suite — including the golden trace and chaos scorecard
    # byte-identity tests — must pass with the struct-of-arrays
    # engine selected for every Simulator.
    if python -c "import numpy" >/dev/null 2>&1; then
        run_stage "pytest (REPRO_ENGINE=vector)" \
            env REPRO_ENGINE=vector python -m pytest -x -q
    else
        skip_stage "pytest (REPRO_ENGINE=vector)" "numpy not installed"
    fi
fi

if [ "$FAILURES" -ne 0 ]; then
    echo "check.sh: ${FAILURES} stage(s) failed" >&2
    exit 1
fi
echo "check.sh: all stages passed"
