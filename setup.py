"""Setup shim: metadata lives in pyproject.toml.

The offline environment lacks the `wheel` package, so PEP 660 editable
installs (`pip install -e .`) cannot build an editable wheel; this shim
enables the legacy `python setup.py develop` path used by `make dev`.
"""
from setuptools import setup

setup()
