#!/usr/bin/env python3
"""DS2 vs Dhalion on the Heron wordcount (Figures 1 and 6).

Runs the same under-provisioned wordcount job twice — once under a
Dhalion-style backpressure-driven controller, once under DS2 — and
prints each controller's scaling timeline and final verdict. Dhalion
needs many single-operator speculative steps and ends over-provisioned;
DS2 lands on the exact optimum (10 FlatMap / 20 Count) in one step.

Run with::

    python examples/dhalion_comparison.py
"""

from repro.experiments.comparison import (
    parallelism_series,
    run_dhalion,
    run_ds2,
)
from repro.workloads.wordcount import COUNT, FLATMAP


def describe(result) -> None:
    print(f"\n=== {result.controller.upper()} ===")
    events = result.run.loop_result.events
    if not events:
        print("  (no scaling actions)")
    for event in events:
        print(
            f"  t={event.time:6.0f}s  flatmap={event.applied[FLATMAP]:3d}"
            f"  count={event.applied[COUNT]:3d}"
        )
    print(
        f"  -> {result.steps} scaling actions, "
        f"converged at t={result.convergence_time:.0f}s"
    )
    print(
        f"  -> final flatmap={result.final_flatmap} "
        f"(optimal {result.optimal_flatmap}), "
        f"count={result.final_count} (optimal {result.optimal_count})"
    )
    print(
        f"  -> provisioned {result.overprovisioning_factor:.2f}x "
        "the optimal instance count"
    )
    print(
        f"  -> achieved {result.achieved_rate:,.0f} rec/s of "
        f"{result.target_rate:,.0f} rec/s target"
    )


def main() -> None:
    print("Running Dhalion (this simulates ~an hour of virtual time)...")
    dhalion = run_dhalion(duration=3600.0)
    describe(dhalion)

    print("\nRunning DS2...")
    ds2 = run_ds2(duration=600.0)
    describe(ds2)

    speedup = (
        dhalion.convergence_time / ds2.convergence_time
        if ds2.convergence_time
        else float("inf")
    )
    print(
        f"\nDS2 converged in {ds2.steps} step(s) vs Dhalion's "
        f"{dhalion.steps}, {speedup:.0f}x faster, with zero "
        "over-provisioning."
    )


if __name__ == "__main__":
    main()
