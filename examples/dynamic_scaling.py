#!/usr/bin/env python3
"""End-to-end dynamic scaling on the Flink-style runtime (Figure 7).

The wordcount job starts under-provisioned against a 2M sentences/s
source; after ten (scaled-down: four) minutes the rate halves. DS2
drives the job through Flink's savepoint-and-restart mechanism: a
couple of scale-ups in phase one, a scale-down (with refinements) in
phase two. The script prints the scaling timeline and an ASCII strip
chart of the observed source rate.

Run with::

    python examples/dynamic_scaling.py
"""

from repro.experiments.dynamic import run_dynamic_scaling
from repro.workloads.wordcount import COUNT, FLATMAP, SOURCE


def strip_chart(series, width: int = 72, height: int = 12) -> str:
    """Render a (time, value) series as a coarse ASCII chart."""
    if not series:
        return "(no samples)"
    times = [t for t, _ in series]
    values = [v for _, v in series]
    t_min, t_max = min(times), max(times)
    v_max = max(values) or 1.0
    # Downsample into `width` buckets of mean value.
    buckets = [[] for _ in range(width)]
    for t, v in series:
        index = min(
            width - 1, int((t - t_min) / (t_max - t_min + 1e-9) * width)
        )
        buckets[index].append(v)
    levels = [
        (sum(b) / len(b) / v_max if b else 0.0) for b in buckets
    ]
    rows = []
    for row in range(height, 0, -1):
        threshold = row / height
        line = "".join(
            "#" if level >= threshold else " " for level in levels
        )
        rows.append(line)
    rows.append("-" * width)
    rows.append(
        f"0s{' ' * (width - 12)}{t_max:7.0f}s"
    )
    return "\n".join(rows)


def main() -> None:
    phase_seconds = 240.0
    print(
        f"Running two phases of {phase_seconds:.0f}s "
        "(2M rec/s, then 1M rec/s)..."
    )
    result = run_dynamic_scaling(phase_seconds=phase_seconds, tick=0.25)

    print("\nScaling timeline:")
    for event in result.run.loop_result.events:
        print(
            f"  t={event.time:7.1f}s  "
            f"flatmap={event.applied[FLATMAP]:3d}  "
            f"count={event.applied[COUNT]:3d}  "
            f"(outage {event.outage_seconds:.0f}s)"
        )
    print(
        f"\nPhase 1: {result.phase1_steps} scaling actions -> "
        f"flatmap={result.phase1_final[FLATMAP]}, "
        f"count={result.phase1_final[COUNT]}"
    )
    print(
        f"Phase 2: {result.phase2_steps} scaling actions -> "
        f"flatmap={result.final[FLATMAP]}, "
        f"count={result.final[COUNT]}"
    )

    print("\nObserved source rate (the Figure 7 top panel):")
    print(strip_chart(result.source_rate_series()))
    print(
        "Dips are savepoint-and-restart outages; plateaus above the "
        "target\nare the source draining backlog after a redeploy."
    )


if __name__ == "__main__":
    main()
