#!/usr/bin/env python3
"""DS2 tracking a diurnal workload — the paper's motivating scenario.

Section 1: "Static provisioning ... forces users to choose a single
point on the spectrum between allocating resources for worst-case,
peak load (which is inefficient) and suffering degraded performance
during load spikes."

This example runs the wordcount job over a compressed "day" whose rate
ramps 250K -> 2M -> 250K records/s in steps, lets DS2 follow it, and
then quantifies the section-1 trade-off by comparing against the two
static options:

* peak-provisioned: always pays for the maximum;
* trough-provisioned: melts down at peak.

Run with::

    python examples/diurnal_scaling.py
"""

from repro.core import ControlLoop, DS2Controller, DS2Policy, ManagerConfig
from repro.dataflow import PhysicalPlan
from repro.dataflow.operators import CostModel, RateSchedule
from repro.engine import EngineConfig, FlinkRuntime, Simulator
from repro.viz import strip_chart
from repro.workloads.wordcount import COUNT, FLATMAP, wordcount_graph

#: A compressed day: each "hour" is 200 s of virtual time.
HOUR = 200.0
DAY = [
    250_000, 250_000, 500_000, 1_000_000, 1_500_000, 2_000_000,
    2_000_000, 1_500_000, 1_000_000, 500_000, 250_000, 250_000,
]


def day_schedule() -> RateSchedule:
    return RateSchedule.phases(
        [(hour * HOUR, float(rate)) for hour, rate in enumerate(DAY)]
    )


def build_graph():
    return wordcount_graph(
        rate=day_schedule(),
        flatmap_cost=CostModel(
            processing_cost=6.0e-6,
            deserialization_cost=5.0e-7,
            serialization_cost=5.0e-7,
            coordination_alpha=0.02,
        ),
        count_cost=CostModel(
            processing_cost=2.0e-7,
            deserialization_cost=2.0e-8,
            serialization_cost=2.0e-8,
            coordination_alpha=0.02,
        ),
    )


def instance_hours(parallelism_series) -> float:
    """Integral of provisioned instances over the run (instance·s)."""
    total = 0.0
    previous_time = None
    previous_value = None
    for time, value in parallelism_series:
        if previous_time is not None:
            total += previous_value * (time - previous_time)
        previous_time, previous_value = time, value
    return total


def main() -> None:
    graph = build_graph()
    duration = HOUR * len(DAY)
    plan = PhysicalPlan(
        graph,
        {"source": 1, FLATMAP: 4, COUNT: 2, "sink": 1},
        max_parallelism=36,
    )
    simulator = Simulator(
        plan,
        FlinkRuntime(),
        EngineConfig(tick=0.25, track_record_latency=False),
    )
    controller = DS2Controller(
        DS2Policy(graph),
        ManagerConfig(warmup_intervals=2, activation_intervals=2),
    )
    parallelism_series = []

    def observer(stats):
        current = simulator.plan.parallelism
        parallelism_series.append(
            (stats.time, float(current[FLATMAP] + current[COUNT]))
        )

    loop = ControlLoop(
        simulator, controller, policy_interval=20.0,
        tick_observer=observer,
    )
    result = loop.run(duration)

    print(f"DS2 over a compressed day ({len(result.events)} actions):")
    print(strip_chart(
        parallelism_series,
        width=72,
        height=10,
        title="Provisioned instances (flatmap + count) over the day",
        y_label="instances",
    ))

    ds2_cost = instance_hours(parallelism_series)
    peak_instances = max(v for _, v in parallelism_series)
    peak_cost = peak_instances * duration
    print(
        f"\nDS2 used {ds2_cost:,.0f} instance-seconds; static "
        f"peak provisioning ({peak_instances:.0f} instances) would use "
        f"{peak_cost:,.0f} — DS2 saves "
        f"{1 - ds2_cost / peak_cost:.0%}."
    )
    backlog = simulator.source_backlog("source")
    mean_rate = sum(DAY) / len(DAY)
    print(
        f"End-of-day source backlog: {backlog:,.0f} records "
        f"(~{backlog / mean_rate:,.0f} s of mean input), accumulated "
        f"almost entirely during the {len(result.events)} "
        "savepoint-and-restart outages — the paper's closing point "
        "(§6): with DS2, responsiveness is limited by the scaling "
        "*mechanism*, not the controller."
    )


if __name__ == "__main__":
    main()
