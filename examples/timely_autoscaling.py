#!/usr/bin/env python3
"""DS2 on a Timely-style runtime: global worker scaling (paper §4.3).

Timely Dataflow configures parallelism globally — every worker runs
every operator — so DS2 sums the per-operator optima into one worker
count. This example runs Nexmark Q3 (persons x auctions incremental
join) starting with 2 workers: queues grow without bound (Timely has no
backpressure), DS2 reads the true rates and jumps straight to 4
workers, and per-epoch latency collapses below the 1-second target.

Also demonstrates `repro.viz`: the epoch-latency CDFs before and after
scaling, drawn in the terminal.

Run with::

    python examples/timely_autoscaling.py
"""

from repro.core import (
    ControlLoop,
    DS2Controller,
    DS2Policy,
    ExecutionModel,
    ManagerConfig,
)
from repro.dataflow import PhysicalPlan
from repro.engine import EngineConfig, Simulator, TimelyRuntime
from repro.experiments.accuracy import measure_fixed_timely
from repro.viz import cdf_chart
from repro.workloads.nexmark import get_query


def main() -> None:
    query = get_query("Q3")
    graph = query.timely_graph()
    print(
        f"{query.name}: {query.description}; sources "
        + ", ".join(
            f"{name}@{rate:,.0f}/s"
            for name, rate in query.timely_rates.items()
        )
    )

    # Closed-loop run from 2 workers.
    plan = PhysicalPlan(graph, {name: 2 for name in graph.names})
    simulator = Simulator(
        plan,
        TimelyRuntime(),
        EngineConfig(
            tick=0.25, track_record_latency=False, epoch_seconds=1.0
        ),
    )
    controller = DS2Controller(
        DS2Policy(graph, ExecutionModel.GLOBAL),
        ManagerConfig(warmup_intervals=1, activation_intervals=3),
    )
    loop = ControlLoop(
        simulator, controller, policy_interval=30.0,
        scalable_operators=graph.names,
    )
    result = loop.run(600.0)
    for event in result.events:
        workers = event.applied[query.main_operator]
        print(
            f"  t={event.time:.0f}s: DS2 reconfigures to {workers} "
            f"workers (outage {event.outage_seconds:.0f}s)"
        )
    print(
        "  queued records at end: "
        f"{simulator.total_queued_records():,.0f}"
    )

    # Fixed-configuration epoch-latency CDFs (Figure 9's panels).
    print("\nPer-epoch latency CDFs (fixed configurations, 120 s):")
    for workers in (2, 4):
        point = measure_fixed_timely(
            query, workers, duration=120.0, tick=0.1
        )
        label = " <- DS2-indicated" if point.is_indicated else ""
        print()
        print(cdf_chart(
            point.epoch_latency,
            width=60,
            height=8,
            target=1.0,
            title=(
                f"{workers} workers{label}: "
                f"{point.fraction_above_target:.0%} of epochs "
                "miss the 1s target (| marks the target)"
            ),
        ))


if __name__ == "__main__":
    main()
