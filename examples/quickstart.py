#!/usr/bin/env python3
"""Quickstart: DS2 sizing a streaming job in one decision.

Builds the wordcount dataflow from the Dhalion benchmark, runs it
under-provisioned on the simulated Heron runtime, collects one minute
of instrumentation, and asks the DS2 model for the optimal parallelism
of every operator — which it answers in a single step (10 FlatMap,
20 Count), exactly as in section 5.2 of the paper.

Run with::

    python examples/quickstart.py
"""

from repro.core import compute_optimal_parallelism
from repro.dataflow import PhysicalPlan
from repro.engine import EngineConfig, HeronRuntime, Simulator
from repro.workloads.wordcount import (
    heron_wordcount_graph,
    heron_wordcount_optimum,
)


def main() -> None:
    # 1. The logical dataflow: Source -> FlatMap -> Count -> Sink, with
    #    the paper's rate limits (source 1M sentences/min; FlatMap 100K
    #    sentences/min/instance; Count 1M words/min/instance).
    graph = heron_wordcount_graph()
    print("Dataflow:", " -> ".join(graph.topological_order()))

    # 2. Deploy it badly: one instance per operator.
    plan = PhysicalPlan(graph, {name: 1 for name in graph.names})
    simulator = Simulator(plan, HeronRuntime(), EngineConfig(tick=0.5))

    # 3. Let it run for one policy interval (60 s of virtual time) and
    #    collect the instrumentation window: records pulled/pushed and
    #    useful time per operator instance.
    simulator.run_for(60.0)
    window = simulator.collect_metrics()
    for name in graph.topological_order():
        true_rate = window.aggregated_true_processing_rate(name)
        observed = window.observed_processing_rate(name)
        shown = f"{true_rate:12.1f}" if true_rate is not None else (
            "   (external)"  # sources are driven by the outside world
        )
        print(
            f"  {name:8s} true rate = "
            f"{shown} rec/s   observed = {observed:12.1f} rec/s"
        )

    # 4. One evaluation of the DS2 model (Eq. 7/8): optimal parallelism
    #    for every operator, from a single metrics window.
    evaluation = compute_optimal_parallelism(
        graph, window, simulator.source_target_rates()
    )
    print("\nDS2 decision (single step):")
    for name, estimate in evaluation.estimates.items():
        print(
            f"  {name:8s} pi = {estimate.optimal_parallelism:3d}   "
            f"(raw {estimate.optimal_parallelism_raw:6.2f})"
        )

    expected = heron_wordcount_optimum()
    decided = {
        name: evaluation.estimates[name].optimal_parallelism
        for name in expected
    }
    assert decided == expected, (decided, expected)
    print(
        "\nMatches the paper's section 5.2 optimum:",
        ", ".join(f"{k}={v}" for k, v in expected.items()),
    )


if __name__ == "__main__":
    main()
