#!/usr/bin/env python3
"""The paper's optional modes, implemented: offline provisioning and
learned non-linear scaling curves.

Part 1 (§3, optional mode): micro-benchmark each operator of Nexmark
Q1 offline at two parallelism levels, fit its scaling curve, and build
an initial plan — then deploy it and show the online controller has
nothing left to fix.

Part 2 (§3.4, future work): run vanilla DS2 and the curve-learning
controller on Q11 from a far-away starting point, showing the learner
shaves a refinement step.

Run with::

    python examples/offline_and_learning.py
"""

from repro.core import (
    ControlLoop,
    DS2Controller,
    DS2Policy,
    LearningDS2Controller,
    ManagerConfig,
    offline_provisioning,
)
from repro.dataflow import PhysicalPlan
from repro.engine import EngineConfig, FlinkRuntime, Simulator
from repro.workloads.nexmark import get_query


def offline_demo() -> None:
    print("=== Offline initial provisioning (paper §3) ===")
    query = get_query("Q1")
    graph = query.flink_graph()
    print(
        f"Micro-benchmarking {len(graph.scalable_operators())} "
        "operator(s) at parallelism 1 and 4..."
    )
    plan = offline_provisioning(
        graph, query.flink_rates, duration=20.0, max_parallelism=36
    )
    for name in graph.topological_order():
        print(f"  {name:16s} -> {plan.parallelism_of(name)} instance(s)")
    print(
        f"(paper-calibrated optimum for {query.main_operator}: "
        f"{query.indicated_flink})"
    )

    simulator = Simulator(
        plan, FlinkRuntime(),
        EngineConfig(tick=0.25, track_record_latency=False),
    )
    controller = DS2Controller(
        DS2Policy(graph),
        ManagerConfig(warmup_intervals=1, activation_intervals=5),
    )
    loop = ControlLoop(simulator, controller, policy_interval=30.0)
    result = loop.run(600.0)
    print(
        f"Online corrections needed after deploying the offline plan: "
        f"{result.scaling_steps}"
    )


def learning_demo() -> None:
    print("\n=== Learned scaling curves (paper §3.4 future work) ===")
    query = get_query("Q11")

    def run(label, controller_class):
        graph = query.flink_graph()
        plan = PhysicalPlan(
            graph, query.initial_parallelism(graph, 8),
            max_parallelism=36,
        )
        simulator = Simulator(
            plan, FlinkRuntime(),
            EngineConfig(tick=0.25, track_record_latency=False),
        )
        controller = controller_class(
            DS2Policy(graph),
            ManagerConfig(warmup_intervals=1, activation_intervals=5),
        )
        loop = ControlLoop(simulator, controller, policy_interval=30.0)
        result = loop.run(1500.0)
        steps = [
            e.applied[query.main_operator] for e in result.events
        ]
        print(
            f"  {label:12s} steps: "
            f"{' -> '.join(map(str, [8] + steps))}"
        )
        return controller

    run("vanilla DS2", DS2Controller)
    learning = run("learning DS2", LearningDS2Controller)
    curve = learning.learner.curve_for(query.main_operator)
    if curve is not None:
        print(
            f"  learned curve for {query.main_operator}: "
            f"rate(p) = {curve.base_rate:,.0f} / "
            f"(1 + {curve.alpha:.4f}·(p-1)) "
            f"from {curve.observations} observations"
        )


def main() -> None:
    offline_demo()
    learning_demo()


if __name__ == "__main__":
    main()
