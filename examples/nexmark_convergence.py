#!/usr/bin/env python3
"""Nexmark convergence (a scaled-down Table 4) plus query semantics.

Part 1 exercises the record-level Nexmark implementation: generates an
event stream and runs the reference query semantics over it, printing
what each query computes and its measured selectivity.

Part 2 runs DS2 on the simulated Q3 and Q5 dataflows from two initial
configurations each and prints the per-step parallelism of the main
operator — the paper's Table 4 rows.

Run with::

    python examples/nexmark_convergence.py
"""

from repro.experiments.convergence import run_flink_convergence_cell
from repro.experiments.report import format_steps
from repro.workloads.nexmark import (
    GeneratorConfig,
    NexmarkGenerator,
    get_query,
)
from repro.workloads.nexmark.semantics import (
    measured_selectivity,
    q1_currency_conversion,
    q2_selection,
    q3_local_item_suggestion,
    q5_hot_items,
)


def semantics_demo() -> None:
    print("=== Nexmark event stream & query semantics ===")
    generator = NexmarkGenerator(GeneratorConfig(seed=7))
    events = generator.take(50_000)
    persons = [e for e in events if type(e).__name__ == "Person"]
    auctions = [e for e in events if type(e).__name__ == "Auction"]
    bids = [e for e in events if type(e).__name__ == "Bid"]
    print(
        f"Generated {len(events):,} events: {len(persons):,} persons, "
        f"{len(auctions):,} auctions, {len(bids):,} bids "
        "(Beam's 1:3:46 mix)"
    )

    converted = q1_currency_conversion(bids)
    print(
        f"Q1: converted {len(converted):,} bid prices to EUR "
        f"(selectivity {measured_selectivity(len(bids), len(converted)):.3f})"
    )

    selected = q2_selection(bids)
    print(
        f"Q2: selected {len(selected):,} bids on watched auctions "
        f"(selectivity {measured_selectivity(len(bids), len(selected)):.4f})"
    )

    listings = q3_local_item_suggestion(persons, auctions)
    print(
        f"Q3: joined {len(listings):,} local-seller listings from "
        f"{len(persons):,} persons x {len(auctions):,} auctions"
    )

    hot = q5_hot_items(bids, window=10.0, slide=2.0)
    if hot:
        window_end, hottest = hot[-1]
        print(
            f"Q5: hottest auction(s) in the window ending at "
            f"{window_end:.0f}s: {hottest[:3]}"
        )


def convergence_demo() -> None:
    print("\n=== DS2 convergence on simulated Nexmark dataflows ===")
    for name in ("Q3", "Q5"):
        query = get_query(name)
        print(
            f"\n{query.name} ({query.description}); paper-indicated "
            f"parallelism: {query.indicated_flink}"
        )
        for initial in (8, 24):
            cell = run_flink_convergence_cell(
                query, initial, duration=1200.0, tick=0.25
            )
            print(
                f"  from {initial:2d}: {format_steps(cell.steps):20s} "
                f"({cell.step_count} step(s), final {cell.final})"
            )


def main() -> None:
    semantics_demo()
    convergence_demo()


if __name__ == "__main__":
    main()
