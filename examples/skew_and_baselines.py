#!/usr/bin/env python3
"""DS2 under data skew, and why threshold controllers struggle.

Part 1 reproduces section 4.2.3: wordcount with a hot Count instance
receiving 20%/50%/70% of all words. DS2 converges in two steps to the
configuration that would be optimal without skew, detects the skew
signature in its per-instance metrics, refuses to over-provision, and
freezes further reconfiguration.

Part 2 runs the classic CPU-threshold controller on the same job
without skew, showing the one-instance-at-a-time crawl DS2 avoids.

Run with::

    python examples/skew_and_baselines.py
"""

from repro.core import ControlLoop
from repro.core.baselines import ThresholdConfig, ThresholdController
from repro.dataflow import PhysicalPlan
from repro.engine import EngineConfig, FlinkRuntime, Simulator
from repro.experiments.skew_experiment import run_skew_experiment
from repro.workloads.wordcount import COUNT, FLATMAP, flink_wordcount_graph


def skew_demo() -> None:
    print("=== DS2 in the presence of skew (section 4.2.3) ===")
    results = run_skew_experiment(duration=500.0)
    for r in results:
        verdict = "converged to no-skew optimum" if (
            r.converged_to_noskew_optimum
        ) else "diverged"
        print(
            f"skew={r.skew:.0%}: {r.steps} steps -> "
            f"flatmap={r.final_flatmap}, count={r.final_count} "
            f"({verdict}); achieved "
            f"{r.achieved_rate / r.target_rate:.0%} of target; "
            f"controller frozen={r.frozen}"
        )
    print(
        "Scaling cannot fix a hot key: DS2 stops at the balanced "
        "optimum\ninstead of chasing the unreachable target."
    )


def threshold_demo() -> None:
    print("\n=== CPU-threshold baseline on the same workload ===")
    graph = flink_wordcount_graph(
        phase_seconds=10_000.0,
        phase1_rate=1_000_000.0,
        phase2_rate=1_000_000.0,
    )
    plan = PhysicalPlan(
        graph,
        {name: 1 for name in graph.names},
        max_parallelism=36,
    )
    simulator = Simulator(
        plan,
        FlinkRuntime(),
        EngineConfig(tick=0.25, track_record_latency=False),
    )
    controller = ThresholdController(
        ThresholdConfig(high_utilization=0.8, low_utilization=0.3)
    )
    loop = ControlLoop(simulator, controller, policy_interval=30.0)
    result = loop.run(1800.0)
    print(f"{len(result.events)} scaling actions in 30 minutes:")
    for event in result.events[:12]:
        print(
            f"  t={event.time:6.0f}s flatmap={event.applied[FLATMAP]:3d} "
            f"count={event.applied[COUNT]:3d}"
        )
    if len(result.events) > 12:
        print(f"  ... and {len(result.events) - 12} more")
    final = simulator.plan.parallelism
    stats = simulator.last_stats
    achieved = (
        stats.source_emitted["source"] / simulator.config.tick
        if stats
        else 0.0
    )
    print(
        f"Final: flatmap={final[FLATMAP]}, count={final[COUNT]}; "
        f"achieved {achieved:,.0f} rec/s of 1,000,000 target."
    )
    print(
        "Additive one-step-at-a-time scaling takes dozens of actions "
        "(and\nsavepoint outages) for what DS2 does in one to three."
    )


def main() -> None:
    skew_demo()
    threshold_demo()


if __name__ == "__main__":
    main()
